"""Value-logging recording baseline.

An instruction-level recorder that logs the value returned by every load
from a *shared* page (one ever written by a different thread than the
reader). Replay then needs no ordering at all — it feeds reads from the
log — but the log grows with every shared read and the instrumentation
taxes every one of them. This bounds the other end of the design space
from CREW: small per-event cost, enormous volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.layout import page_of
from repro.oskernel.kernel import Kernel, KernelSetup

#: words per logged read (packed address delta + value)
_ENTRY_WORDS = 2
_WORD_BYTES = 8


@dataclass
class ValueLogResult:
    """Outcome of a value-logged run."""

    duration: int
    logged_reads: int
    log_bytes: int
    output: List[int]


class ValueLogInterceptor:
    """Tracks page writers; charges and counts shared-read log entries."""

    def __init__(self, entry_cost: int):
        self.entry_cost = entry_cost
        self.page_writers: Dict[int, Set[int]] = {}
        self.logged_reads = 0

    def __call__(self, tid: int, addr: int, is_write: bool) -> int:
        page_no = page_of(addr)
        writers = self.page_writers.get(page_no)
        if is_write:
            if writers is None:
                self.page_writers[page_no] = {tid}
            else:
                writers.add(tid)
            return 0
        if writers and (len(writers) > 1 or tid not in writers):
            self.logged_reads += 1
            return self.entry_cost
        return 0


def record_value_log(
    program: ProgramImage,
    setup: KernelSetup,
    machine: MachineConfig,
) -> ValueLogResult:
    """Run on ``machine.cores`` cores under value logging."""
    kernel = Kernel(setup, program.heap_base)
    engine = MulticoreEngine.boot(program, machine, LiveSyscalls(kernel))
    interceptor = ValueLogInterceptor(machine.costs.value_log_entry)
    engine.access_interceptor = interceptor
    engine.run()
    return ValueLogResult(
        duration=engine.time,
        logged_reads=interceptor.logged_reads,
        log_bytes=interceptor.logged_reads * _ENTRY_WORDS * _WORD_BYTES,
        output=list(kernel.output),
    )
