"""CREW page-ownership recording (SMP-ReVirt style).

Multiprocessor recording without uniparallelism must capture the order of
shared-memory accesses. The page-protection approach gives each page a
concurrent-read-exclusive-write state; any access that violates the current
state takes a protection fault, transfers ownership, and appends a log
entry. Fault cost and log volume both scale with *sharing*, which is why
this baseline collapses on fine-grained-sharing workloads — the comparison
the paper draws.

Implemented as an access interceptor on the multicore engine: execution is
identical to native, with per-access extra cycles and log accounting.
Replay of CREW recordings is out of scope (the comparison is overhead and
log size, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.memory.layout import page_of
from repro.oskernel.kernel import Kernel, KernelSetup

#: approximate words per ownership-transfer log entry
#: (page, old state, new state, vector timestamp)
_ENTRY_WORDS = 4
_WORD_BYTES = 8


class _PageState:
    __slots__ = ("owner", "readers")

    def __init__(self) -> None:
        #: exclusive owner tid, or None when in shared mode
        self.owner = None
        self.readers: Set[int] = set()


@dataclass
class CrewResult:
    """Outcome of a CREW-recorded run."""

    duration: int
    faults: int
    log_entries: int
    log_bytes: int
    output: List[int]
    native_like_ops: int


class CrewInterceptor:
    """Maintains CREW state; charges faults; counts log entries."""

    def __init__(self, fault_cost: int):
        self.fault_cost = fault_cost
        self.pages: Dict[int, _PageState] = {}
        self.faults = 0
        self.log_entries = 0

    def __call__(self, tid: int, addr: int, is_write: bool) -> int:
        page_no = page_of(addr)
        state = self.pages.get(page_no)
        if state is None:
            state = self.pages[page_no] = _PageState()
            # First touch: take it exclusive silently (like a fresh
            # mapping after fork; no cross-CPU transfer to log).
            if is_write:
                state.owner = tid
            else:
                state.readers = {tid}
            return 0
        if is_write:
            if state.owner == tid:
                return 0
            # Upgrade to exclusive: invalidate all other holders.
            self.faults += 1
            self.log_entries += 1
            state.owner = tid
            state.readers = set()
            return self.fault_cost
        # Read access.
        if state.owner == tid:
            return 0
        if state.owner is not None:
            # Downgrade exclusive → shared.
            self.faults += 1
            self.log_entries += 1
            state.readers = {state.owner, tid}
            state.owner = None
            return self.fault_cost
        if tid in state.readers:
            return 0
        # Join the reader set (needs a fault to update protections).
        self.faults += 1
        self.log_entries += 1
        state.readers.add(tid)
        return self.fault_cost


def record_crew(
    program: ProgramImage,
    setup: KernelSetup,
    machine: MachineConfig,
) -> CrewResult:
    """Run on ``machine.cores`` cores under CREW recording."""
    kernel = Kernel(setup, program.heap_base)
    engine = MulticoreEngine.boot(program, machine, LiveSyscalls(kernel))
    interceptor = CrewInterceptor(machine.costs.crew_fault)
    engine.access_interceptor = interceptor
    engine.run()
    return CrewResult(
        duration=engine.time,
        faults=interceptor.faults,
        log_entries=interceptor.log_entries,
        log_bytes=interceptor.log_entries * _ENTRY_WORDS * _WORD_BYTES,
        output=list(kernel.output),
        native_like_ops=engine.ops,
    )
