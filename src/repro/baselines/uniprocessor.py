"""The uniprocessor recording baseline.

This is the "simpler and faster mechanism of single-processor record and
replay" the paper starts from: timeslice every thread on one CPU, log the
timeslice order and syscall results. The log is as small as DoublePlay's —
but a W-thread CPU-bound program pays roughly W× slowdown because it has
renounced the other cores. DoublePlay's whole point is getting this
recorder's simplicity at multicore speed.

The result is packaged as a real one-epoch :class:`Recording`, so the
standard :class:`~repro.core.replayer.Replayer` replays it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.checkpoint.manager import CheckpointManager
from repro.exec.services import LiveSyscalls
from repro.exec.uniprocessor import UniprocessorEngine
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallRecord
from repro.record.recording import EpochRecord, Recording
from repro.record.sync_log import SyncOrderLog


@dataclass
class UniprocessorRecordResult:
    """A single-CPU recording and its duration."""

    recording: Recording
    duration: int
    output: List[int]


def record_uniprocessor(
    program: ProgramImage,
    setup: KernelSetup,
    machine: MachineConfig,
) -> UniprocessorRecordResult:
    """Record the whole execution on one CPU (one giant epoch)."""
    syscall_log: List[SyscallRecord] = []
    kernel = Kernel(setup, program.heap_base)
    services = LiveSyscalls(kernel, syscall_log)
    engine = UniprocessorEngine.boot(program, machine, services)
    committed_events: List = []
    engine.acquisition_log = committed_events
    manager = CheckpointManager()
    initial = manager.initial(engine)
    outcome = engine.run()
    final = manager.take(engine, index=1)
    recording = Recording(
        program_name=program.name,
        worker_threads=1,
        initial_checkpoint=initial,
        syscall_records=list(syscall_log),
        final_digest=final.digest(),
    )
    recording.epochs.append(
        EpochRecord(
            index=0,
            start_checkpoint=initial,
            targets=final.targets(),
            schedule=outcome.schedule,
            sync_log=SyncOrderLog(tuple(committed_events)),
            end_digest=final.digest(),
            duration=outcome.duration,
        )
    )
    recording.stats = {"divergences": 0, "epochs": 1, "makespan": engine.time}
    return UniprocessorRecordResult(
        recording=recording,
        duration=engine.time,
        output=list(kernel.output),
    )
