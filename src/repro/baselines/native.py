"""Native execution: the program on its W cores, nothing recorded."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls
from repro.exec.trace import TraceObserver
from repro.isa.program import ProgramImage
from repro.machine.config import MachineConfig
from repro.oskernel.kernel import Kernel, KernelSetup


@dataclass
class NativeResult:
    """Outcome of an unrecorded run."""

    duration: int
    output: List[int]
    ops: int
    final_digest: int
    kernel: Kernel
    engine: MulticoreEngine


def run_native(
    program: ProgramImage,
    setup: KernelSetup,
    machine: MachineConfig,
    observers: Optional[Sequence[TraceObserver]] = None,
) -> NativeResult:
    """Run to completion on ``machine.cores`` cores with a live kernel."""
    kernel = Kernel(setup, program.heap_base)
    engine = MulticoreEngine.boot(program, machine, LiveSyscalls(kernel))
    if observers:
        engine.observers.extend(observers)
    engine.run()
    return NativeResult(
        duration=engine.time,
        output=list(kernel.output),
        ops=engine.ops,
        final_digest=engine.state_digest(),
        kernel=kernel,
        engine=engine,
    )
