"""Recording baselines DoublePlay is compared against.

* :mod:`~repro.baselines.native` — no recording at all (the denominator of
  every overhead figure).
* :mod:`~repro.baselines.uniprocessor` — the classical single-CPU recorder
  DoublePlay generalises: all threads timesliced on one core, schedule +
  syscalls logged. Cheap logs, but forfeits multicore scalability.
* :mod:`~repro.baselines.crew` — SMP-ReVirt-style multiprocessor recording
  via concurrent-read-exclusive-write page ownership: every ownership
  transition is a page-protection fault plus a log entry.
* :mod:`~repro.baselines.value_log` — instruction-level recording that logs
  the value of every read from a shared page.
"""

from repro.baselines.native import run_native, NativeResult
from repro.baselines.uniprocessor import record_uniprocessor, UniprocessorRecordResult
from repro.baselines.crew import record_crew, CrewResult
from repro.baselines.value_log import record_value_log, ValueLogResult

__all__ = [
    "run_native",
    "NativeResult",
    "record_uniprocessor",
    "UniprocessorRecordResult",
    "record_crew",
    "CrewResult",
    "record_value_log",
    "ValueLogResult",
]
