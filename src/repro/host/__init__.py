"""Host-parallelism layer: process-parallel epoch execution and replay.

DoublePlay's epoch-parallel executions are deterministic functions of
their start checkpoints and logs, so they are independent not just in
simulated time but on real host cores. This package ships self-contained
epoch work units (:mod:`repro.host.wire`) to a spawn-safe process pool
(:mod:`repro.host.pool`) and merges the results in order on the
coordinator. ``jobs=1`` everywhere means "don't import any of this" —
the serial code paths in :mod:`repro.core` are untouched.

Worker failures (crashes, hangs, task exceptions) are first-class,
recoverable events: the executor contains them per unit (retry once on a
fresh pool, then in-coordinator serial fallback), so recordings and
replay verdicts stay bit-identical at any jobs count even on an
imperfect host. :mod:`repro.host.faults` makes those paths
deterministically testable via ``REPRO_FAULT``.
"""

from repro.host.faults import FaultSpec, active_faults, parse_fault_specs
from repro.host.pool import (
    HostExecutor,
    invalidate_shared_pool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.host.wire import (
    RecordEpochUnit,
    ReplayEpochUnit,
    UnitTiming,
    record_units_for_segment,
    replay_units_for_recording,
    signal_slice,
    syscall_slice,
)

__all__ = [
    "FaultSpec",
    "HostExecutor",
    "RecordEpochUnit",
    "ReplayEpochUnit",
    "UnitTiming",
    "active_faults",
    "invalidate_shared_pool",
    "parse_fault_specs",
    "record_units_for_segment",
    "replay_units_for_recording",
    "shared_pool",
    "shutdown_shared_pool",
    "signal_slice",
    "syscall_slice",
]
