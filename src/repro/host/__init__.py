"""Host-parallelism layer: process-parallel epoch execution and replay.

DoublePlay's epoch-parallel executions are deterministic functions of
their start checkpoints and logs, so they are independent not just in
simulated time but on real host cores. This package ships self-contained
epoch work units (:mod:`repro.host.wire`) to a spawn-safe process pool
(:mod:`repro.host.pool`) and merges the results in order on the
coordinator. ``jobs=1`` everywhere means "don't import any of this" —
the serial code paths in :mod:`repro.core` are untouched.

The wire is content-addressed (:mod:`repro.memory.blob`): units are
skeletons referencing shared blobs by digest, workers keep byte-budgeted
LRU caches of decoded blobs (:mod:`repro.host.blobs`), and each dispatch
ships only what the pool is not already believed to hold — in steady
state a unit costs its skeleton plus the epoch's dirty pages.

Worker failures (crashes, hangs, task exceptions) are first-class,
recoverable events: the executor contains them per unit (retry once on a
fresh pool, then in-coordinator serial fallback), so recordings and
replay verdicts stay bit-identical at any jobs count even on an
imperfect host. :mod:`repro.host.faults` makes those paths
deterministically testable via ``REPRO_FAULT``; a worker's blob-cache
miss is likewise structured (``NeedBlobs`` → full re-dispatch), never an
error.
"""

from repro.host.blobs import BlobCache, WorkerCacheTracker, blob_cache_capacity
from repro.host.faults import FaultSpec, active_faults, parse_fault_specs
from repro.host.pool import (
    HostExecutor,
    UnitDispatch,
    invalidate_shared_pool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.host.wire import (
    BlobRef,
    NeedBlobs,
    RecordEpochUnit,
    ReplayEpochUnit,
    ThreadLogIndex,
    UnitBatch,
    UnitTiming,
    record_units_for_segment,
    replay_units_for_recording,
    signal_slice,
    syscall_slice,
)

__all__ = [
    "BlobCache",
    "BlobRef",
    "FaultSpec",
    "HostExecutor",
    "NeedBlobs",
    "RecordEpochUnit",
    "ReplayEpochUnit",
    "ThreadLogIndex",
    "UnitBatch",
    "UnitDispatch",
    "UnitTiming",
    "WorkerCacheTracker",
    "active_faults",
    "blob_cache_capacity",
    "invalidate_shared_pool",
    "parse_fault_specs",
    "record_units_for_segment",
    "replay_units_for_recording",
    "shared_pool",
    "shutdown_shared_pool",
    "signal_slice",
    "syscall_slice",
]
