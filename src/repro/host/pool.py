"""The worker-pool executor: epoch work units on real host cores.

``HostExecutor`` wraps a spawn-context :class:`ProcessPoolExecutor`.
Spawn (not fork) keeps workers safe on every platform and guarantees
they import a fresh ``repro`` — nothing leaks from the coordinator
except what the work units carry.

Protocol per batch: submit every unit up front, consume results strictly
in position order (the merge on the coordinator is therefore
deterministic regardless of completion order), and on the first
divergence cancel everything not yet started — epochs after a divergence
belong to an abandoned thread-parallel future and their results would be
discarded anyway. A worker that is already mid-epoch runs to completion
harmlessly; its result is dropped.

**Fault containment.** A failed epoch-parallel attempt is disposable by
design — that is the paper's core insight — so host faults are treated
the same way a guest divergence is: contain, re-execute, keep going.
Three failure classes, one policy (per unit: retry once on a fresh pool,
then fall back to in-coordinator serial execution):

* **crash** — a worker process died; ``concurrent.futures`` breaks the
  whole pool, so surviving results are harvested out of their futures,
  the pool is rebuilt, and unfinished units are resubmitted. The crash
  is attributed to the unit the coordinator was waiting on; collateral
  victims are resubmitted without blame (they may occasionally burn an
  attempt of their own — that costs parallelism, never correctness).
* **timeout** — a unit exceeded the per-unit wall-clock budget
  (``unit_timeout``, default ``REPRO_UNIT_TIMEOUT`` or 60 s; 0
  disables). The hung worker cannot be recalled, so the pool's processes
  are terminated and the pool rebuilt.
* **task error** — the unit raised inside the worker. The worker returns
  the exception as a structured, picklable
  :class:`~repro.errors.WorkerTaskError` result instead of raising, so
  the pool stays healthy. A deterministic guest error reproduces during
  the serial fallback and is re-raised there, exactly as the ``jobs=1``
  path would have raised it.

Because epoch execution is a deterministic function of the checkpoints
and logs, and the serial fallback runs the identical pure function in
the coordinator, every recording and replay verdict is bit-identical to
``jobs=1`` no matter which workers crashed, hung, or raised along the
way. Faults change only wall-clock time and the host accounting
(`timing_summary()["faults"]`), which is surfaced on
``RecordResult.host`` / ``ReplayResult.host`` and never stored in a
recording.

One shared pool is kept per coordinator process (``shared_pool``) so a
test suite or benchmark sweep pays the spawn cost once, not per
recording. A broken shared pool is detected and rebuilt transparently on
the next call; growing the pool drains in-flight work before replacing
it. Workers hold no state between units — every unit ships its own
program image and machine config (the pickle memo keeps that cheap, and
the worker-side decode cache rebuild is a pure function of the code).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.config import default_unit_timeout
from repro.core.epoch_runner import EpochRunResult, run_epoch
from repro.errors import (
    HostPoolError,
    WorkerCrashError,
    WorkerTaskError,
    WorkerTimeoutError,
)
from repro.host import faults as fault_injection
from repro.host.wire import RecordEpochUnit, ReplayEpochUnit, UnitTiming
from repro.record.sync_log import SyncOrderLog

_shared_pool = None
_shared_size = 0

#: pool attempts per unit before the serial fallback (initial + 1 retry)
_POOL_ATTEMPTS = 2

#: ceiling on worker spawn + first ping (a stuck spawn is a host bug)
_SPAWN_TIMEOUT = 120.0


@contextlib.contextmanager
def _worker_import_path():
    """Temporarily export the package root so spawned workers can ``import repro``.

    Spawn re-execs the interpreter, which builds ``sys.path`` from
    ``PYTHONPATH`` — the coordinator may instead have been launched with
    a ``sys.path`` hack (benchmarks do), so the package root is exported
    explicitly. The export is scoped to pool construction and restored
    exactly afterwards: a persistent mutation would leak into every
    unrelated subprocess the caller (or its test suite) spawns later.
    """
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    original = os.environ.get("PYTHONPATH")
    parts = [p for p in (original or "").split(os.pathsep) if p]
    if root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([root] + parts)
    try:
        yield
    finally:
        if original is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = original


def _worker_ping() -> int:
    """No-op worker task: forces a spawn and proves the import worked."""
    return os.getpid()


def _new_pool(jobs: int) -> ProcessPoolExecutor:
    """A fresh spawn-context pool with all ``jobs`` workers pre-spawned.

    Workers must spawn while the scoped ``PYTHONPATH`` export is active,
    and ``ProcessPoolExecutor`` spawns lazily per submit — so every
    worker is forced up with a ping before the export is rolled back.
    (A pool never replaces dead workers — a death breaks it and we build
    a new one through here — so no worker can ever spawn later without
    the export.)
    """
    context = multiprocessing.get_context("spawn")
    with _worker_import_path():
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
        try:
            pings = [pool.submit(_worker_ping) for _ in range(jobs)]
            for ping in pings:
                ping.result(timeout=_SPAWN_TIMEOUT)
        except Exception:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return pool


def _pool_broken(pool: ProcessPoolExecutor) -> bool:
    return bool(getattr(pool, "_broken", False))


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose workers may be hung (they cannot be recalled)."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:
            pass


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The coordinator-wide pool, grown (never shrunk) to ``jobs`` workers.

    A previously-broken pool (a worker died) is detected here and rebuilt
    transparently — the breakage of one recording must never poison the
    next. Growing drains in-flight units before replacing the pool, so a
    still-running batch keeps its results.
    """
    global _shared_pool, _shared_size
    if _shared_pool is not None and _pool_broken(_shared_pool):
        _shared_pool.shutdown(wait=True, cancel_futures=True)
        _shared_pool = None
        _shared_size = 0
    if _shared_pool is None or _shared_size < jobs:
        if _shared_pool is not None:
            # Drain, don't yank: both running and queued units complete
            # before the pool is replaced (growth must never lose work).
            _shared_pool.shutdown(wait=True, cancel_futures=False)
        _shared_pool = _new_pool(jobs)
        _shared_size = jobs
    return _shared_pool


def invalidate_shared_pool(kill: bool = False) -> None:
    """Drop the cached shared pool so the next ``shared_pool()`` rebuilds it.

    ``kill=True`` terminates the worker processes first — required after
    a unit timeout, when a worker is hung and would otherwise block
    interpreter exit (the executor's atexit handler joins workers).
    """
    global _shared_pool, _shared_size
    if _shared_pool is None:
        return
    if kill:
        _kill_workers(_shared_pool)
    else:
        _shared_pool.shutdown(wait=True, cancel_futures=True)
    _shared_pool = None
    _shared_size = 0


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests and benchmark hygiene)."""
    invalidate_shared_pool(kill=False)


# ----------------------------------------------------------------------
# Worker-side task functions (must be module-level for pickling).
#
# ``_record_unit`` / ``_replay_unit`` are the pure execution bodies; the
# coordinator's serial fallback calls them directly (no fault injection,
# no exception conversion — a deterministic error must raise there with
# full context, matching the jobs=1 path). ``_record_task`` /
# ``_replay_task`` are the worker entry points: they apply injected
# faults and convert any exception into a structured WorkerTaskError
# *result*, so a bad unit can never break the pool.
# ----------------------------------------------------------------------
def _record_unit(payload) -> Tuple[int, EpochRunResult, UnitTiming]:
    program, machine, unit = payload
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = run_epoch(
        program,
        machine,
        unit.epoch_index,
        unit.start,
        unit.boundary,
        unit.syscalls,
        SyncOrderLog(unit.sync_events),
        unit.use_sync_hints,
        signal_records=unit.signals,
    )
    timing = UnitTiming(
        wall=time.perf_counter() - wall0, cpu=time.process_time() - cpu0
    )
    return unit.position, result, timing


def _replay_unit(payload):
    # Imported here, not at module top: repro.core.replayer is the only
    # core module this one touches, and it imports us lazily in return.
    from repro.core.replayer import replay_epoch_unit

    program, machine, unit = payload
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    cycles, failure = replay_epoch_unit(program, machine, unit)
    timing = UnitTiming(
        wall=time.perf_counter() - wall0, cpu=time.process_time() - cpu0
    )
    return unit.position, (cycles, failure), timing


def _as_task_error(exc: BaseException, position: int) -> WorkerTaskError:
    return WorkerTaskError(
        f"{type(exc).__name__}: {exc}",
        position=position,
        exc_type=type(exc).__name__,
        traceback_text=traceback.format_exc(),
    )


def _record_task(payload):
    unit = payload[2]
    try:
        fault_injection.inject(unit.faults)
        return _record_unit(payload)
    except Exception as exc:
        return unit.position, _as_task_error(exc, unit.position), UnitTiming()


def _replay_task(payload):
    unit = payload[2]
    try:
        fault_injection.inject(unit.faults)
        return _replay_unit(payload)
    except Exception as exc:
        return unit.position, _as_task_error(exc, unit.position), UnitTiming()


_COUNTER_BY_KIND = {
    "crash": "crashes",
    "timeout": "timeouts",
    "task-error": "task_errors",
}


class HostExecutor:
    """Runs epoch work units on a pool of worker processes.

    ``private=True`` gives the executor its own pool sized exactly
    ``jobs`` (benchmarks measure specific worker counts); the default
    shares the coordinator-wide pool. ``unit_timeout`` is the per-unit
    wall-clock budget in seconds (None = the ``REPRO_UNIT_TIMEOUT`` env
    default of 60; 0 disables hang detection).
    """

    def __init__(self, jobs: int, private: bool = False, unit_timeout=None):
        self.jobs = max(1, int(jobs))
        self.unit_timeout = (
            default_unit_timeout()
            if unit_timeout is None
            else max(0.0, float(unit_timeout))
        )
        self._private = bool(private)
        self._private_pool = _new_pool(self.jobs) if private else None
        self._fault_specs = fault_injection.active_faults()
        #: per-unit worker timings, in merge order: (kind, position,
        #: UnitTiming). Serial-fallback units record coordinator timings
        #: under "<kind>-serial".
        self.unit_timings: List[Tuple[str, int, UnitTiming]] = []
        #: coordinator seconds spent building + submitting payloads
        self.dispatch_wall = 0.0
        #: containment counters (crashes, timeouts, task_errors, retries,
        #: serial_fallbacks) — surfaced via ``timing_summary()``
        self.counters: Dict[str, int] = dict.fromkeys(
            ("crashes", "timeouts", "task_errors", "retries", "serial_fallbacks"),
            0,
        )
        #: one entry per observed failure: kind, position, attempt, error
        self.fault_events: List[Dict[str, object]] = []

    def _pool(self) -> ProcessPoolExecutor:
        if not self._private:
            return shared_pool(self.jobs)
        if self._private_pool is None or _pool_broken(self._private_pool):
            if self._private_pool is not None:
                self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = _new_pool(self.jobs)
        return self._private_pool

    def _abandon_pool(self, kill: bool) -> None:
        """After a crash/timeout: drop the current pool; ``_pool()`` rebuilds."""
        if self._private:
            pool, self._private_pool = self._private_pool, None
            if pool is not None:
                if kill:
                    _kill_workers(pool)
                else:
                    pool.shutdown(wait=True, cancel_futures=True)
        else:
            invalidate_shared_pool(kill=kill)

    def close(self) -> None:
        if self._private_pool is not None:
            self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = None

    # ------------------------------------------------------------------
    def _payloads(self, kind: str, program, machine, units) -> List[tuple]:
        """Stamp fault specs onto the units and build worker payloads."""
        payloads = []
        for unit in units:
            unit.faults = fault_injection.faults_for(
                self._fault_specs, kind, unit.position
            )
            payloads.append((program, machine, unit))
        return payloads

    def _note_fault(self, failure: HostPoolError) -> None:
        self.counters[_COUNTER_BY_KIND[failure.kind]] += 1
        self.fault_events.append(
            {
                "kind": failure.kind,
                "position": failure.position,
                "attempt": failure.attempt,
                "error": str(failure),
            }
        )

    def _submit_missing(self, task_fn, payloads, futures, done, start) -> None:
        """Ensure every unfinished position from ``start`` has a live future.

        If the pool breaks mid-submission (a just-submitted unit crashed
        already), the loop stops quietly: the head future carries the
        breakage, and waiting on it attributes the failure and rebuilds.
        """
        pool = self._pool()
        t0 = time.perf_counter()
        try:
            for position in range(start, len(payloads)):
                if position not in done and position not in futures:
                    futures[position] = pool.submit(task_fn, payloads[position])
        except Exception:
            pass
        finally:
            self.dispatch_wall += time.perf_counter() - t0

    @staticmethod
    def _harvest(futures, done) -> None:
        """Salvage completed results out of a broken batch, drop the rest."""
        for position, future in list(futures.items()):
            if future.done() and not future.cancelled():
                try:
                    if future.exception(timeout=0) is None:
                        done[position] = future.result(timeout=0)
                except Exception:
                    pass
        futures.clear()

    def _run_units(
        self, kind: str, task_fn, unit_fn, payloads, stop_on=None
    ) -> Iterator[Tuple[int, object]]:
        """Yield ``(position, value)`` in position order with containment.

        Per-unit policy: run in the pool; on crash/timeout/task-error,
        retry once (crash and timeout also rebuild the pool); on a second
        failure, execute the unit serially in the coordinator via
        ``unit_fn``. ``stop_on(value)`` truthy cancels everything still
        pending and ends the batch (the record path's divergence exit).
        """
        n = len(payloads)
        done: Dict[int, tuple] = {}
        futures: Dict[int, object] = {}
        attempts = [0] * n
        next_pos = 0
        try:
            while next_pos < n:
                failure = None
                outcome = done.pop(next_pos, None)
                if outcome is None:
                    self._submit_missing(task_fn, payloads, futures, done, next_pos)
                    future = futures.pop(next_pos, None)
                    if future is None:
                        failure = WorkerCrashError(
                            f"worker pool broke before unit {next_pos} could "
                            f"be submitted",
                            position=next_pos,
                            attempt=attempts[next_pos],
                        )
                    else:
                        try:
                            outcome = future.result(
                                timeout=self.unit_timeout or None
                            )
                        except FutureTimeout:
                            future.cancel()
                            failure = WorkerTimeoutError(
                                f"unit {next_pos} exceeded the "
                                f"{self.unit_timeout:g}s unit timeout",
                                position=next_pos,
                                attempt=attempts[next_pos],
                                timeout=self.unit_timeout,
                            )
                        except Exception as exc:
                            failure = WorkerCrashError(
                                f"worker died running unit {next_pos}: {exc!r}",
                                position=next_pos,
                                attempt=attempts[next_pos],
                            )
                if outcome is not None:
                    _, value, timing = outcome
                    if isinstance(value, WorkerTaskError):
                        value.attempt = attempts[next_pos]
                        failure = value
                    else:
                        self.unit_timings.append((kind, next_pos, timing))
                        if stop_on is not None and stop_on(value):
                            for pending in futures.values():
                                pending.cancel()
                            yield next_pos, value
                            return
                        yield next_pos, value
                        next_pos += 1
                        continue
                # ------------------------------------------------------
                # Containment: the unit failed in the pool.
                # ------------------------------------------------------
                self._note_fault(failure)
                if not isinstance(failure, WorkerTaskError):
                    # Crash/hang: the pool itself is suspect — salvage
                    # finished results, then rebuild on the next submit.
                    self._harvest(futures, done)
                    self._abandon_pool(
                        kill=isinstance(failure, WorkerTimeoutError)
                    )
                attempts[next_pos] += 1
                if attempts[next_pos] < _POOL_ATTEMPTS:
                    self.counters["retries"] += 1
                    continue
                self.counters["serial_fallbacks"] += 1
                _, value, timing = unit_fn(payloads[next_pos])
                self.unit_timings.append((kind + "-serial", next_pos, timing))
                if stop_on is not None and stop_on(value):
                    for pending in futures.values():
                        pending.cancel()
                    yield next_pos, value
                    return
                yield next_pos, value
                next_pos += 1
        finally:
            for pending in futures.values():
                pending.cancel()

    # ------------------------------------------------------------------
    def run_record_units(
        self, program, machine, units: Sequence[RecordEpochUnit]
    ) -> Iterator[Tuple[int, EpochRunResult]]:
        """Yield ``(position, result)`` in position order.

        Stops after the first divergence, cancelling all not-yet-started
        units — exactly the serial loop's early exit. Worker crashes,
        hangs, and exceptions are contained per unit (retry once, then
        serial fallback), so the stream always completes and is always
        bit-identical to the serial path.
        """
        payloads = self._payloads("record", program, machine, units)
        yield from self._run_units(
            "record",
            _record_task,
            _record_unit,
            payloads,
            stop_on=lambda result: not result.ok,
        )

    def run_replay_units(
        self, program, machine, units: Sequence[ReplayEpochUnit]
    ) -> List[Tuple[int, int, object]]:
        """All ``(position, cycles, failure)`` results, in position order."""
        payloads = self._payloads("replay", program, machine, units)
        outcomes = []
        for position, value in self._run_units(
            "replay", _replay_task, _replay_unit, payloads
        ):
            cycles, failure = value
            outcomes.append((position, cycles, failure))
        return outcomes

    # ------------------------------------------------------------------
    def timing_summary(self) -> dict:
        """Host-cost accounting for benchmarks and ``RecordResult.host``."""
        return {
            "jobs": self.jobs,
            "units": len(self.unit_timings),
            "unit_wall": [round(t.wall, 6) for _, _, t in self.unit_timings],
            "unit_cpu": [round(t.cpu, 6) for _, _, t in self.unit_timings],
            "dispatch_wall": round(self.dispatch_wall, 6),
            "faults": dict(self.counters),
            "fault_events": list(self.fault_events),
        }
