"""The worker-pool executor: epoch work units on real host cores.

``HostExecutor`` wraps a spawn-context :class:`ProcessPoolExecutor`.
Spawn (not fork) keeps workers safe on every platform and guarantees
they import a fresh ``repro`` — nothing leaks from the coordinator
except what the work units carry.

Protocol per batch: build dispatches lazily inside a bounded submission
window (about two per worker — blobs are encoded and shipped only for
units that will actually run), consume results strictly in position
order (the merge on the coordinator is therefore deterministic
regardless of completion order), and on the first divergence cancel
everything not yet started — epochs after a divergence belong to an
abandoned thread-parallel future and their results would be discarded
anyway. A worker that is already mid-epoch runs to completion
harmlessly; its result is dropped.

**The content-addressed wire.** A dispatch carries a unit *skeleton*
(:mod:`repro.host.wire`) plus only the blobs the pool's workers are not
already believed to hold: workers keep byte-budgeted LRU caches of
decoded blobs and the coordinator mirrors their contents in a
module-level :class:`~repro.host.blobs.WorkerCacheTracker` (module
level for the same reason the shared pool is — worker caches persist
across ``HostExecutor`` instances, so the model must too). The pool
gives no control over which worker pops a unit, so a blob is omitted
only when *every* live worker holds it; the tracker is advisory — a
worker missing a digest answers with a structured
:class:`~repro.host.wire.NeedBlobs` result and the coordinator
re-dispatches that unit with its full blob set (capped, then treated as
a task error and contained like any other). In steady state a unit
ships its skeleton plus the epoch's dirty pages, nothing else.

**Fault containment.** A failed epoch-parallel attempt is disposable by
design — that is the paper's core insight — so host faults are treated
the same way a guest divergence is: contain, re-execute, keep going.
Three failure classes, one policy (per unit: retry once on a fresh pool,
then fall back to in-coordinator serial execution):

* **crash** — a worker process died; ``concurrent.futures`` breaks the
  whole pool, so surviving results are harvested out of their futures,
  the pool is rebuilt, and unfinished units are resubmitted. The crash
  is attributed to the unit the coordinator was waiting on; collateral
  victims are resubmitted without blame (they may occasionally burn an
  attempt of their own — that costs parallelism, never correctness).
* **timeout** — a unit exceeded the per-unit wall-clock budget
  (``unit_timeout``, default ``REPRO_UNIT_TIMEOUT`` or 60 s; 0
  disables). The hung worker cannot be recalled, so the pool's processes
  are terminated and the pool rebuilt.
* **task error** — the unit raised inside the worker. The worker returns
  the exception as a structured, picklable
  :class:`~repro.errors.WorkerTaskError` result instead of raising, so
  the pool stays healthy. A deterministic guest error reproduces during
  the serial fallback and is re-raised there, exactly as the ``jobs=1``
  path would have raised it.

Because epoch execution is a deterministic function of the checkpoints
and logs, and the serial fallback runs the identical pure function in
the coordinator (through the units' ``_local`` shortcuts — the exact
original objects, no decode), every recording and replay verdict is
bit-identical to ``jobs=1`` no matter which workers crashed, hung,
raised, or missed their caches along the way. Faults and cache traffic
change only wall-clock time and the host accounting
(``timing_summary()["faults"]`` / ``["wire"]``), which is surfaced on
``RecordResult.host`` / ``ReplayResult.host`` and never stored in a
recording.

One shared pool is kept per coordinator process (``shared_pool``) so a
test suite or benchmark sweep pays the spawn cost once, not per
recording. A broken shared pool is detected and rebuilt transparently on
the next call; growing the pool drains in-flight work before replacing
it.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.config import default_unit_timeout
from repro.core.epoch_runner import EpochRunResult, run_epoch
from repro.errors import (
    HostPoolError,
    WorkerCrashError,
    WorkerTaskError,
    WorkerTimeoutError,
)
from repro.host import faults as fault_injection
from repro.host.blobs import (
    BlobCache,
    WorkerCacheTracker,
    blob_cache_capacity,
    decode_blob_object,
)
from repro.host.wire import NeedBlobs, UnitBatch, UnitTiming
from repro.memory.blob import blob_digest, encode_object
from repro.obs import events as obs_events
from repro.obs import histo as obs_histo
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.record.sync_log import SyncOrderLog

_shared_pool = None
_shared_size = 0

#: guards ``_shared_pool``/``_shared_size``: concurrent sessions (the
#: service layer, or any threaded caller) reach shared_pool() and
#: invalidate_shared_pool() simultaneously, and the grow/rebuild path is
#: a multi-step read-modify-write — unlocked, two racing callers can
#: shut down a pool twice or leak one entirely. RLock because a locked
#: path may call another locked path (shutdown → invalidate).
_pool_lock = threading.RLock()

#: coordinator-side mirror of every worker's blob cache, keyed by pid.
#: Thread-safe (internally locked): with the service layer many session
#: threads build dispatches and fold acks concurrently.
_cache_tracker = WorkerCacheTracker()

#: pool attempts per unit before the serial fallback (initial + 1 retry)
_POOL_ATTEMPTS = 2

#: full-blob-set re-dispatches per unit before a NeedBlobs answer is
#: treated as a task error (a full dispatch is self-sufficient — the
#: worker can always hydrate straight from it — so one resend suffices
#: unless something is genuinely wrong)
_BLOB_RESEND_LIMIT = 2

#: ceiling on worker spawn + first ping (a stuck spawn is a host bug)
_SPAWN_TIMEOUT = 120.0


@contextlib.contextmanager
def _worker_import_path():
    """Temporarily export the package root so spawned workers can ``import repro``.

    Spawn re-execs the interpreter, which builds ``sys.path`` from
    ``PYTHONPATH`` — the coordinator may instead have been launched with
    a ``sys.path`` hack (benchmarks do), so the package root is exported
    explicitly. The export is scoped to pool construction and restored
    exactly afterwards: a persistent mutation would leak into every
    unrelated subprocess the caller (or its test suite) spawns later.
    """
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    original = os.environ.get("PYTHONPATH")
    parts = [p for p in (original or "").split(os.pathsep) if p]
    if root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([root] + parts)
    try:
        yield
    finally:
        if original is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = original


def _worker_ping() -> int:
    """No-op worker task: forces a spawn and proves the import worked."""
    return os.getpid()


def _new_pool(jobs: int) -> ProcessPoolExecutor:
    """A fresh spawn-context pool with all ``jobs`` workers pre-spawned.

    Workers must spawn while the scoped ``PYTHONPATH`` export is active,
    and ``ProcessPoolExecutor`` spawns lazily per submit — so every
    worker is forced up with a ping before the export is rolled back.
    (A pool never replaces dead workers — a death breaks it and we build
    a new one through here — so no worker can ever spawn later without
    the export.)
    """
    context = multiprocessing.get_context("spawn")
    with _worker_import_path():
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
        try:
            pings = [pool.submit(_worker_ping) for _ in range(jobs)]
            for ping in pings:
                ping.result(timeout=_SPAWN_TIMEOUT)
        except Exception:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return pool


def _pool_broken(pool: ProcessPoolExecutor) -> bool:
    return bool(getattr(pool, "_broken", False))


def _pool_pids(pool: ProcessPoolExecutor) -> List[int]:
    return list(getattr(pool, "_processes", None) or ())


def _forget_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Drop the cache-tracker state of a pool whose workers are going away."""
    if pool is None:
        return
    for pid in _pool_pids(pool):
        _cache_tracker.forget_worker(pid)


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose workers may be hung (they cannot be recalled)."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:
            pass


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The coordinator-wide pool, grown (never shrunk) to ``jobs`` workers.

    A previously-broken pool (a worker died) is detected here and rebuilt
    transparently — the breakage of one recording must never poison the
    next. Growing drains in-flight units before replacing the pool, so a
    still-running batch keeps its results.
    """
    global _shared_pool, _shared_size
    with _pool_lock:
        if _shared_pool is not None and _pool_broken(_shared_pool):
            _forget_pool(_shared_pool)
            _shared_pool.shutdown(wait=True, cancel_futures=True)
            _shared_pool = None
            _shared_size = 0
        if _shared_pool is None or _shared_size < jobs:
            if _shared_pool is not None:
                # Drain, don't yank: both running and queued units complete
                # before the pool is replaced (growth must never lose work).
                _forget_pool(_shared_pool)
                _shared_pool.shutdown(wait=True, cancel_futures=False)
            _shared_pool = _new_pool(jobs)
            _shared_size = jobs
        return _shared_pool


def invalidate_shared_pool(kill: bool = False) -> None:
    """Drop the cached shared pool so the next ``shared_pool()`` rebuilds it.

    ``kill=True`` terminates the worker processes first — required after
    a unit timeout, when a worker is hung and would otherwise block
    interpreter exit (the executor's atexit handler joins workers).
    """
    global _shared_pool, _shared_size
    with _pool_lock:
        if _shared_pool is None:
            return
        _forget_pool(_shared_pool)
        if kill:
            _kill_workers(_shared_pool)
        else:
            _shared_pool.shutdown(wait=True, cancel_futures=True)
        _shared_pool = None
        _shared_size = 0


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests and benchmark hygiene)."""
    invalidate_shared_pool(kill=False)


# ----------------------------------------------------------------------
# The dispatch envelope and the worker-side blob cache.
# ----------------------------------------------------------------------
@dataclass
class UnitDispatch:
    """One unit skeleton plus exactly the blobs being shipped with it.

    ``_local_program`` (stripped at the pickle boundary) keeps the
    coordinator's serial fallback zero-decode, together with the
    ``_local`` shortcuts inside the unit itself.
    """

    machine: object
    unit: object
    program_digest: int
    blobs: Dict[int, bytes] = field(default_factory=dict)
    #: when True the worker collects observability spans for this unit
    #: and ships them home on ``UnitTiming.spans`` (set from the
    #: coordinator's active tracer; workers have no tracer of their own)
    trace: bool = False
    _local_program: object = field(default=None, repr=False)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_local_program"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def required_digests(self) -> Set[int]:
        required = self.unit.required_digests()
        required.add(self.program_digest)
        return required


#: this worker process's decoded-blob cache (created at first dispatch,
#: so ``REPRO_BLOB_CACHE_MB`` is read in the worker, not inherited state)
_worker_blobs: Optional[BlobCache] = None

#: decoded :class:`~repro.isa.program.ProgramImage` objects pinned per
#: worker process, keyed by program blob digest. The blob cache already
#: dedupes decoded blobs, but it is byte-budgeted and may evict the
#: program — and re-decoding an image also throws away the decode and
#: superblock tables lazily rebuilt on its ``__dict__`` (both are
#: stripped at the pickle boundary). Pinning a handful of images keeps
#: those tables memoised once per image per process.
_worker_programs: Dict[int, object] = {}
_WORKER_PROGRAM_CAP = 4


def _worker_program(digest: int, resolve) -> object:
    program = _worker_programs.get(digest)
    if program is None:
        program = resolve(digest)
        while len(_worker_programs) >= _WORKER_PROGRAM_CAP:
            _worker_programs.pop(next(iter(_worker_programs)))
        _worker_programs[digest] = program
    return program


def _worker_cache() -> BlobCache:
    global _worker_blobs
    if _worker_blobs is None:
        _worker_blobs = BlobCache(blob_cache_capacity())
    return _worker_blobs


def _absorb_dispatch(dispatch: UnitDispatch):
    """Insert the dispatch's blobs into this worker's cache and check it.

    Returns ``(resolve, timing)`` on success — ``resolve`` maps a digest
    to its decoded object, falling back from the cache to the dispatch's
    own blobs (via a per-dispatch memo), so a digest that was shipped can
    ALWAYS be resolved even if a tiny cache evicted it during this very
    absorb; that fallback is what makes NeedBlobs loops impossible.
    Returns ``(None, NeedBlobs)`` when a required digest is neither
    cached nor shipped.
    """
    cache = _worker_cache()
    evicted: List[int] = []
    for digest, blob in dispatch.blobs.items():
        evicted.extend(cache.insert(digest, blob))
    hits = misses = 0
    missing: List[int] = []
    for digest in dispatch.required_digests():
        if digest in dispatch.blobs:
            misses += 1
        elif cache.has(digest) or digest in _worker_programs:
            hits += 1
        else:
            missing.append(digest)
    if missing:
        return None, NeedBlobs(
            position=dispatch.unit.position,
            missing=tuple(sorted(missing)),
            worker_pid=os.getpid(),
            evicted=tuple(evicted),
        )
    memo: Dict[int, object] = {}

    def resolve(digest: int):
        obj = cache.get(digest)
        if obj is not None:
            return obj
        obj = memo.get(digest)
        if obj is None:
            obj = decode_blob_object(dispatch.blobs[digest])
            memo[digest] = obj
        return obj

    timing = UnitTiming(
        blob_cache_hits=hits,
        blob_cache_misses=misses,
        worker_pid=os.getpid(),
        evicted=tuple(evicted),
    )
    return resolve, timing


# ----------------------------------------------------------------------
# Worker-side task functions (must be module-level for pickling).
#
# ``_record_unit`` / ``_replay_unit`` are the pure execution bodies the
# coordinator's serial fallback calls directly: they rehydrate through
# the units' ``_local`` shortcuts (the exact original objects — no
# fault injection, no exception conversion, so a deterministic guest
# error raises there with full context, matching the jobs=1 path).
# ``_record_task`` / ``_replay_task`` are the worker entry points: they
# apply injected faults, absorb the dispatch into the blob cache, and
# convert any exception into a structured WorkerTaskError *result*, so
# a bad unit can never break the pool.
# ----------------------------------------------------------------------
def _run_record_body(program, machine, unit, start, boundary, syscalls, signals, hints):
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = run_epoch(
        program,
        machine,
        unit.epoch_index,
        start,
        boundary,
        syscalls,
        SyncOrderLog(hints[unit.sync_start :]),
        unit.use_sync_hints,
        signal_records=signals,
    )
    return result, time.perf_counter() - wall0, time.process_time() - cpu0


def _serial_execute_span(kind: str, unit, wall: float) -> None:
    """Record a coordinator-track execute span for a serial-fallback unit."""
    tracer = obs_spans.current()
    if tracer is None:
        return
    end = tracer.now()
    tracer.add(
        "execute",
        obs_spans.CAT_EPOCH,
        end - wall,
        end,
        args={
            "epoch": unit.epoch_index,
            "position": unit.position,
            "kind": kind + "-serial",
        },
    )


def _finish_worker_timing(timing: UnitTiming, spanlog, kind: str, unit, wall):
    """Attach this task's spans and drained counters to its timing."""
    if spanlog is not None:
        end = time.perf_counter()
        spanlog.add(
            "execute",
            obs_spans.CAT_EPOCH,
            end - wall,
            end,
            epoch=unit.epoch_index,
            position=unit.position,
            kind=kind,
        )
        timing.spans = spanlog.export()
    timing.metrics = tuple(sorted(obs_metrics.drain_process().items()))


def _record_unit(dispatch: UnitDispatch) -> Tuple[int, EpochRunResult, UnitTiming]:
    unit = dispatch.unit
    result, wall, cpu = _run_record_body(
        dispatch._local_program,
        dispatch.machine,
        unit,
        unit.start.hydrate(None),
        unit.boundary.hydrate(None),
        unit.syscalls._local,
        unit.signals._local,
        unit.sync_events._local,
    )
    _serial_execute_span("record", unit, wall)
    return unit.position, result, UnitTiming(
        wall=wall, cpu=cpu, worker_pid=os.getpid()
    )


def _record_task(dispatch: UnitDispatch):
    unit = dispatch.unit
    # A fresh registry per task: whatever an aborted or dropped previous
    # task accumulated must never ride home with this unit's counters.
    obs_metrics.process_stats().clear()
    spanlog = obs_spans.WorkerSpanLog() if dispatch.trace else None
    try:
        fault_injection.inject(unit.faults)
        decode_start = time.perf_counter()
        resolve, timing = _absorb_dispatch(dispatch)
        if resolve is None:
            return unit.position, timing, UnitTiming(worker_pid=os.getpid())
        start = unit.start.hydrate(resolve)
        boundary = unit.boundary.hydrate(resolve, base_pages=start.memory.pages)
        if spanlog is not None:
            spanlog.add(
                "wire-decode",
                obs_spans.CAT_WIRE,
                decode_start,
                time.perf_counter(),
                position=unit.position,
                cache_hits=timing.blob_cache_hits,
                cache_misses=timing.blob_cache_misses,
            )
        result, wall, cpu = _run_record_body(
            _worker_program(dispatch.program_digest, resolve),
            dispatch.machine,
            unit,
            start,
            boundary,
            resolve(unit.syscalls.digest),
            resolve(unit.signals.digest),
            resolve(unit.sync_events.digest),
        )
        timing.wall = wall
        timing.cpu = cpu
        _finish_worker_timing(timing, spanlog, "record", unit, wall)
        return unit.position, result, timing
    except Exception as exc:
        return unit.position, _as_task_error(exc, unit.position), UnitTiming(
            worker_pid=os.getpid()
        )


def _run_replay_body(program, machine, unit, start, syscalls, signals):
    # Imported here, not at module top: repro.core.replayer is the only
    # core module this one touches, and it imports us lazily in return.
    from repro.core.replayer import replay_epoch_unit

    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    cycles, failure = replay_epoch_unit(program, machine, unit, start, syscalls, signals)
    return (cycles, failure), time.perf_counter() - wall0, time.process_time() - cpu0


def _replay_unit(dispatch: UnitDispatch):
    unit = dispatch.unit
    value, wall, cpu = _run_replay_body(
        dispatch._local_program,
        dispatch.machine,
        unit,
        unit.start.hydrate(None),
        unit.syscalls._local,
        unit.signals._local,
    )
    _serial_execute_span("replay", unit, wall)
    return unit.position, value, UnitTiming(
        wall=wall, cpu=cpu, worker_pid=os.getpid()
    )


def _replay_task(dispatch: UnitDispatch):
    unit = dispatch.unit
    obs_metrics.process_stats().clear()
    spanlog = obs_spans.WorkerSpanLog() if dispatch.trace else None
    try:
        fault_injection.inject(unit.faults)
        decode_start = time.perf_counter()
        resolve, timing = _absorb_dispatch(dispatch)
        if resolve is None:
            return unit.position, timing, UnitTiming(worker_pid=os.getpid())
        start = unit.start.hydrate(resolve)
        if spanlog is not None:
            spanlog.add(
                "wire-decode",
                obs_spans.CAT_WIRE,
                decode_start,
                time.perf_counter(),
                position=unit.position,
                cache_hits=timing.blob_cache_hits,
                cache_misses=timing.blob_cache_misses,
            )
        value, wall, cpu = _run_replay_body(
            _worker_program(dispatch.program_digest, resolve),
            dispatch.machine,
            unit,
            start,
            resolve(unit.syscalls.digest),
            resolve(unit.signals.digest),
        )
        timing.wall = wall
        timing.cpu = cpu
        _finish_worker_timing(timing, spanlog, "replay", unit, wall)
        return unit.position, value, timing
    except Exception as exc:
        return unit.position, _as_task_error(exc, unit.position), UnitTiming(
            worker_pid=os.getpid()
        )


def _as_task_error(exc: BaseException, position: int) -> WorkerTaskError:
    return WorkerTaskError(
        f"{type(exc).__name__}: {exc}",
        position=position,
        exc_type=type(exc).__name__,
        traceback_text=traceback.format_exc(),
    )


_COUNTER_BY_KIND = {
    "crash": "crashes",
    "timeout": "timeouts",
    "task-error": "task_errors",
}


@dataclass
class _Batch:
    """Coordinator-side state of one in-flight unit batch."""

    program: object
    machine: object
    program_digest: int
    units: List[object]
    #: every blob any unit references, keyed by digest
    blobs: Dict[int, bytes]
    #: per-position wire accounting, accumulated across re-dispatches
    bytes_shipped: List[int] = field(default_factory=list)
    blobs_sent: List[int] = field(default_factory=list)
    #: per-position digest set of the most recent dispatch's blobs
    last_shipped: List[Set[int]] = field(default_factory=list)

    def __post_init__(self):
        n = len(self.units)
        self.bytes_shipped = [0] * n
        self.blobs_sent = [0] * n
        self.last_shipped = [set() for _ in range(n)]


class _DirectDispatcher:
    """The default submission path: the executor's own (shared/private) pool.

    This is the seam the service layer replaces: a dispatcher owns *where*
    a built dispatch goes (``submit``), which workers it may assume hold
    cached blobs (``pids``), and what abandoning a suspect pool means
    (``abandon``). The direct dispatcher preserves the pre-service
    behavior exactly — every call is a pass-through to the executor's
    pool — while a fleet dispatcher (``repro.service``) routes the same
    calls through per-session queues into one multiplexed pool.
    """

    def __init__(self, executor: "HostExecutor"):
        self._executor = executor

    def warm(self) -> None:
        """Bring the pool up (speculative sessions warm off-thread)."""
        self._executor._pool()

    def pids(self) -> List[int]:
        return _pool_pids(self._executor._pool())

    def submit(self, fn, dispatch: UnitDispatch):
        return self._executor._pool().submit(fn, dispatch)

    def abandon(self, kill: bool) -> None:
        self._executor._abandon_pool(kill)


class HostExecutor:
    """Runs epoch work units on a pool of worker processes.

    ``private=True`` gives the executor its own pool sized exactly
    ``jobs`` (benchmarks measure specific worker counts); the default
    shares the coordinator-wide pool. ``unit_timeout`` is the per-unit
    wall-clock budget in seconds (None = the ``REPRO_UNIT_TIMEOUT`` env
    default of 60; 0 disables hang detection).

    ``dispatcher`` overrides the submission path (see
    :class:`_DirectDispatcher`); the service layer injects a per-session
    fleet dispatcher here so many concurrent sessions share one pool
    with fair-share scheduling and bounded backpressure. ``fault_specs``
    overrides the ``REPRO_FAULT`` env with an explicit per-executor
    directive string (or pre-parsed spec tuple) — the service scopes
    injected faults to a single tenant this way.
    """

    def __init__(
        self,
        jobs: int,
        private: bool = False,
        unit_timeout=None,
        dispatcher=None,
        fault_specs=None,
    ):
        self.jobs = max(1, int(jobs))
        self.unit_timeout = (
            default_unit_timeout()
            if unit_timeout is None
            else max(0.0, float(unit_timeout))
        )
        self._private = bool(private)
        self._private_pool = _new_pool(self.jobs) if private else None
        if fault_specs is None:
            self._fault_specs = fault_injection.active_faults()
        elif isinstance(fault_specs, str):
            self._fault_specs = fault_injection.parse_fault_specs(
                fault_specs, os.environ.get("REPRO_FAULT_STATE", "")
            )
        else:
            self._fault_specs = tuple(fault_specs)
        self._dispatch_path = dispatcher if dispatcher is not None else _DirectDispatcher(self)
        #: optional dispatcher hook observing each dispatch's shipped and
        #: cache-omitted blob bytes (the fleet's cross-session dedup
        #: accounting); None (the direct default) costs nothing.
        self._wire_observer = getattr(self._dispatch_path, "note_dispatch", None)
        #: (program object, digest, blob) of the last program shipped
        self._program_blob: Optional[Tuple[object, int, bytes]] = None
        #: per-unit worker timings, in merge order: (kind, position,
        #: UnitTiming). Serial-fallback units record coordinator timings
        #: under "<kind>-serial".
        self.unit_timings: List[Tuple[str, int, UnitTiming]] = []
        #: coordinator seconds spent building + submitting dispatches
        self.dispatch_wall = 0.0
        #: same work measured on the dispatching thread's CPU clock —
        #: wall inflates under timesharing (workers compete for cores
        #: while the coordinator builds dispatches), so models of an
        #: uncontended host should use this instead
        self.dispatch_cpu = 0.0
        #: containment counters (crashes, timeouts, task_errors, retries,
        #: serial_fallbacks) — surfaced via ``timing_summary()``
        self.counters: Dict[str, int] = dict.fromkeys(
            ("crashes", "timeouts", "task_errors", "retries", "serial_fallbacks"),
            0,
        )
        #: one entry per observed failure: kind, position, attempt, error
        self.fault_events: List[Dict[str, object]] = []
        #: NeedBlobs turnarounds (benign cache-coherence traffic, never a
        #: fault — kept out of ``counters`` so clean-run assertions hold)
        self.blob_resends = 0
        #: two-deep commit pipeline accounting (see
        #: :class:`SpeculativeSession`): units dispatched during the
        #: thread-parallel run, how many results were accepted into the
        #: merge, invalidated by late-arriving log/hint events, or
        #: discarded for host reasons (crash, timeout, NeedBlobs, task
        #: error). Kept out of ``counters`` — speculation failures are
        #: never faults, just discarded wall-clock.
        self.speculation: Dict[str, int] = dict.fromkeys(
            ("dispatched", "accepted", "invalidated", "discarded"), 0
        )

    def _pool(self) -> ProcessPoolExecutor:
        if not self._private:
            return shared_pool(self.jobs)
        if self._private_pool is None or _pool_broken(self._private_pool):
            if self._private_pool is not None:
                _forget_pool(self._private_pool)
                self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = _new_pool(self.jobs)
        return self._private_pool

    def _abandon_pool(self, kill: bool) -> None:
        """After a crash/timeout: drop the current pool; ``_pool()`` rebuilds."""
        if self._private:
            pool, self._private_pool = self._private_pool, None
            if pool is not None:
                _forget_pool(pool)
                if kill:
                    _kill_workers(pool)
                else:
                    pool.shutdown(wait=True, cancel_futures=True)
        else:
            invalidate_shared_pool(kill=kill)

    def close(self) -> None:
        if self._private_pool is not None:
            _forget_pool(self._private_pool)
            self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = None

    # ------------------------------------------------------------------
    def _program_wire(self, program) -> Tuple[int, bytes]:
        """The program image's blob, encoded once per program object."""
        cached = self._program_blob
        if cached is None or cached[0] is not program:
            blob = encode_object(program)
            self._program_blob = (program, blob_digest(blob), blob)
            cached = self._program_blob
        return cached[1], cached[2]

    def _begin_batch(self, kind: str, program, machine, batch: UnitBatch) -> _Batch:
        """Stamp fault specs onto the units and set up wire accounting."""
        for unit in batch.units:
            unit.faults = fault_injection.faults_for(
                self._fault_specs, kind, unit.position
            )
        digest, blob = self._program_wire(program)
        blobs = dict(batch.blobs)
        blobs[digest] = blob
        return _Batch(
            program=program,
            machine=machine,
            program_digest=digest,
            units=list(batch.units),
            blobs=blobs,
        )

    def _make_dispatch(
        self, batch: _Batch, position: int, pids: Sequence[int] = (), full: bool = False
    ) -> UnitDispatch:
        """Build one dispatch, shipping only blobs the pool may be missing."""
        unit = batch.units[position]
        required = set(unit.required_digests())
        required.add(batch.program_digest)
        omitted: Set[int] = set()
        if not full:
            held = _cache_tracker.common(pids)
            omitted = required & held
            required -= held
        blobs = {digest: batch.blobs[digest] for digest in required}
        if self._wire_observer is not None:
            self._wire_observer(
                {digest: len(blobs[digest]) for digest in blobs},
                {digest: len(batch.blobs[digest]) for digest in omitted},
            )
        batch.bytes_shipped[position] += sum(len(b) for b in blobs.values())
        batch.blobs_sent[position] += len(blobs)
        batch.last_shipped[position] = set(blobs)
        return UnitDispatch(
            machine=batch.machine,
            unit=unit,
            program_digest=batch.program_digest,
            blobs=blobs,
            trace=obs_spans.enabled(),
            _local_program=batch.program,
        )

    def _local_dispatch(self, batch: _Batch, position: int) -> UnitDispatch:
        """A blob-free dispatch for the in-coordinator serial fallback."""
        return UnitDispatch(
            machine=batch.machine,
            unit=batch.units[position],
            program_digest=batch.program_digest,
            _local_program=batch.program,
        )

    def _apply_ack(self, pid: int, shipped: Set[int], evicted) -> None:
        """Fold a worker's response into the coordinator's cache mirror."""
        if not pid:
            return
        _cache_tracker.note_inserted(pid, shipped)
        _cache_tracker.note_evicted(pid, evicted)

    def _ingest_observability(self, timing: UnitTiming) -> None:
        """Fold a merged unit's piggybacked counters/spans into this process.

        Called only for results that actually merge — dropped results
        (cancelled divergence tails, crashed attempts) drop their
        counters with them, which is what keeps ``jobs=1`` and
        ``jobs=N`` metrics identical.
        """
        if timing.metrics:
            obs_metrics.process_stats().update_from(dict(timing.metrics))
        if timing.spans:
            tracer = obs_spans.current()
            if tracer is not None:
                tracer.ingest(
                    timing.spans,
                    track=timing.worker_pid,
                    annotate={
                        "bytes_shipped": timing.bytes_shipped,
                        "blobs_sent": timing.blobs_sent,
                    },
                )

    def _note_fault(self, failure: HostPoolError) -> None:
        self.counters[_COUNTER_BY_KIND[failure.kind]] += 1
        self.fault_events.append(
            {
                "kind": failure.kind,
                "position": failure.position,
                "attempt": failure.attempt,
                "error": str(failure),
            }
        )
        obs_events.emit(
            "fault-contained", fault=failure.kind,
            position=failure.position, attempt=failure.attempt,
        )

    def _submit_missing(self, task_fn, batch, futures, done, start, skip=None) -> None:
        """Keep the submission window full of live futures from ``start``.

        Dispatches are built lazily, at most ~2 per worker ahead of the
        merge head (the head position itself is always submitted): blobs
        are encoded and shipped only for units that will actually run, so
        a divergence exit wastes no dispatch work on cancelled tails. If
        the pool breaks mid-submission (a just-submitted unit crashed
        already), the loop stops quietly: the head future carries the
        breakage, and waiting on it attributes the failure and rebuilds.
        """
        t0 = time.perf_counter()
        c0 = time.thread_time()
        tracer = obs_spans.current()
        try:
            dispatcher = self._dispatch_path
            pids = dispatcher.pids()
            window = max(2 * self.jobs, 2)
            live = sum(1 for f in futures.values() if not f.done())
            for position in range(start, len(batch.units)):
                if position in done or position in futures:
                    continue
                if skip and position in skip:
                    continue
                if position > start and live >= window:
                    break
                span_start = tracer.now() if tracer else 0.0
                bytes_before = batch.bytes_shipped[position]
                futures[position] = dispatcher.submit(
                    task_fn, self._make_dispatch(batch, position, pids=pids)
                )
                if tracer is not None:
                    tracer.add(
                        "dispatch",
                        obs_spans.CAT_WIRE,
                        span_start,
                        tracer.now(),
                        args={
                            "position": position,
                            "bytes": batch.bytes_shipped[position] - bytes_before,
                        },
                    )
                live += 1
        except Exception:
            pass
        finally:
            self.dispatch_wall += time.perf_counter() - t0
            self.dispatch_cpu += time.thread_time() - c0

    def _resend_with_blobs(self, task_fn, batch, futures, position) -> bool:
        """Re-dispatch one unit with its full blob set after a NeedBlobs."""
        t0 = time.perf_counter()
        c0 = time.thread_time()
        tracer = obs_spans.current()
        span_start = tracer.now() if tracer else 0.0
        bytes_before = batch.bytes_shipped[position]
        try:
            futures[position] = self._dispatch_path.submit(
                task_fn, self._make_dispatch(batch, position, full=True)
            )
            if tracer is not None:
                tracer.add(
                    "blob-resend",
                    obs_spans.CAT_WIRE,
                    span_start,
                    tracer.now(),
                    args={
                        "position": position,
                        "bytes": batch.bytes_shipped[position] - bytes_before,
                    },
                )
            return True
        except Exception:
            return False
        finally:
            self.dispatch_wall += time.perf_counter() - t0
            self.dispatch_cpu += time.thread_time() - c0

    @staticmethod
    def _harvest(futures, done) -> None:
        """Salvage completed results out of a broken batch, drop the rest."""
        for position, future in list(futures.items()):
            if future.done() and not future.cancelled():
                try:
                    if future.exception(timeout=0) is None:
                        done[position] = future.result(timeout=0)
                except Exception:
                    pass
        futures.clear()

    def _run_units(
        self, kind: str, task_fn, unit_fn, batch: _Batch, stop_on=None,
        preloaded: Optional[Dict[int, tuple]] = None,
    ) -> Iterator[Tuple[int, object]]:
        """Yield ``(position, value)`` in position order with containment.

        Per-unit policy: run in the pool; a NeedBlobs answer re-dispatches
        the unit with its full blob set (bounded, never counted as a
        fault); on crash/timeout/task-error, retry once (crash and
        timeout also rebuild the pool); on a second failure, execute the
        unit serially in the coordinator via ``unit_fn``. ``stop_on(value)``
        truthy cancels everything still pending and ends the batch (the
        record path's divergence exit).

        ``preloaded`` maps positions to validated ``(value, timing)``
        outcomes already produced by the speculative pipeline; those
        positions are never dispatched. Their observability ingest and
        timing records happen here, at consume time in merge order, so a
        divergence at an earlier position drops them exactly as it would
        have cancelled a dispatch — ``jobs=1`` metric parity.
        """
        n = len(batch.units)
        done: Dict[int, tuple] = {}
        futures: Dict[int, object] = {}
        attempts = [0] * n
        resends = [0] * n
        next_pos = 0
        try:
            while next_pos < n:
                if preloaded and next_pos in preloaded:
                    value, timing = preloaded.pop(next_pos)
                    self.speculation["accepted"] += 1
                    self._ingest_observability(timing)
                    self.unit_timings.append((kind, next_pos, timing))
                    if stop_on is not None and stop_on(value):
                        for pending in futures.values():
                            pending.cancel()
                        yield next_pos, value
                        return
                    yield next_pos, value
                    next_pos += 1
                    continue
                failure = None
                outcome = done.pop(next_pos, None)
                if outcome is None:
                    self._submit_missing(
                        task_fn, batch, futures, done, next_pos, skip=preloaded
                    )
                    future = futures.pop(next_pos, None)
                    if future is None:
                        failure = WorkerCrashError(
                            f"worker pool broke before unit {next_pos} could "
                            f"be submitted",
                            position=next_pos,
                            attempt=attempts[next_pos],
                        )
                    else:
                        try:
                            outcome = future.result(
                                timeout=self.unit_timeout or None
                            )
                        except FutureTimeout:
                            future.cancel()
                            failure = WorkerTimeoutError(
                                f"unit {next_pos} exceeded the "
                                f"{self.unit_timeout:g}s unit timeout",
                                position=next_pos,
                                attempt=attempts[next_pos],
                                timeout=self.unit_timeout,
                            )
                        except Exception as exc:
                            failure = WorkerCrashError(
                                f"worker died running unit {next_pos}: {exc!r}",
                                position=next_pos,
                                attempt=attempts[next_pos],
                            )
                if outcome is not None:
                    _, value, timing = outcome
                    if isinstance(value, NeedBlobs):
                        # Benign cache miss, not a fault: the worker could
                        # not resolve every digest (eviction raced the
                        # dispatch, or a fresh pool lost its caches).
                        # Answer with the full blob set and wait again.
                        self._apply_ack(
                            value.worker_pid,
                            batch.last_shipped[next_pos],
                            set(value.evicted) | set(value.missing),
                        )
                        self.blob_resends += 1
                        resends[next_pos] += 1
                        obs_events.emit(
                            "blob-resend", position=next_pos,
                            missing=len(value.missing),
                        )
                        if resends[next_pos] <= _BLOB_RESEND_LIMIT:
                            self._resend_with_blobs(
                                task_fn, batch, futures, next_pos
                            )
                            continue
                        failure = WorkerTaskError(
                            f"unit {next_pos} still missing "
                            f"{len(value.missing)} blob(s) after a "
                            f"full re-dispatch",
                            position=next_pos,
                        )
                        failure.attempt = attempts[next_pos]
                    elif isinstance(value, WorkerTaskError):
                        value.attempt = attempts[next_pos]
                        failure = value
                    else:
                        self._apply_ack(
                            timing.worker_pid,
                            batch.last_shipped[next_pos],
                            timing.evicted,
                        )
                        timing.bytes_shipped = batch.bytes_shipped[next_pos]
                        timing.blobs_sent = batch.blobs_sent[next_pos]
                        self._ingest_observability(timing)
                        self.unit_timings.append((kind, next_pos, timing))
                        # Coordinator-side, merged results only: dropped
                        # speculation/divergence tails never observe.
                        obs_histo.observe("unit_wall_s", timing.wall)
                        obs_histo.observe("unit_bytes", timing.bytes_shipped)
                        if stop_on is not None and stop_on(value):
                            for pending in futures.values():
                                pending.cancel()
                            yield next_pos, value
                            return
                        yield next_pos, value
                        next_pos += 1
                        continue
                # ------------------------------------------------------
                # Containment: the unit failed in the pool.
                # ------------------------------------------------------
                self._note_fault(failure)
                if not isinstance(failure, WorkerTaskError):
                    # Crash/hang: the pool itself is suspect — salvage
                    # finished results, then rebuild on the next submit.
                    self._harvest(futures, done)
                    self._dispatch_path.abandon(
                        kill=isinstance(failure, WorkerTimeoutError)
                    )
                attempts[next_pos] += 1
                if attempts[next_pos] < _POOL_ATTEMPTS:
                    self.counters["retries"] += 1
                    obs_events.emit("fault-retry", position=next_pos)
                    continue
                self.counters["serial_fallbacks"] += 1
                obs_events.emit("serial-fallback", position=next_pos)
                _, value, timing = unit_fn(self._local_dispatch(batch, next_pos))
                timing.bytes_shipped = batch.bytes_shipped[next_pos]
                timing.blobs_sent = batch.blobs_sent[next_pos]
                self.unit_timings.append((kind + "-serial", next_pos, timing))
                if stop_on is not None and stop_on(value):
                    for pending in futures.values():
                        pending.cancel()
                    yield next_pos, value
                    return
                yield next_pos, value
                next_pos += 1
        finally:
            for pending in futures.values():
                pending.cancel()

    # ------------------------------------------------------------------
    def run_record_units(
        self, program, machine, batch: UnitBatch,
        preloaded: Optional[Dict[int, tuple]] = None,
    ) -> Iterator[Tuple[int, EpochRunResult]]:
        """Yield ``(position, result)`` in position order.

        Stops after the first divergence, cancelling all not-yet-started
        units — exactly the serial loop's early exit. Worker crashes,
        hangs, and exceptions are contained per unit (retry once, then
        serial fallback), so the stream always completes and is always
        bit-identical to the serial path. ``preloaded`` carries validated
        speculative outcomes (see :class:`SpeculativeSession`) consumed
        in place of a dispatch.
        """
        state = self._begin_batch("record", program, machine, batch)
        yield from self._run_units(
            "record",
            _record_task,
            _record_unit,
            state,
            stop_on=lambda result: not result.ok,
            preloaded=preloaded,
        )

    def speculative_session(self, program, machine) -> "SpeculativeSession":
        """A per-segment speculative dispatch session (commit pipeline)."""
        return SpeculativeSession(self, program, machine)

    def run_replay_units(
        self, program, machine, batch: UnitBatch
    ) -> List[Tuple[int, int, object]]:
        """All ``(position, cycles, failure)`` results, in position order."""
        state = self._begin_batch("replay", program, machine, batch)
        outcomes = []
        for position, value in self._run_units(
            "replay", _replay_task, _replay_unit, state
        ):
            cycles, failure = value
            outcomes.append((position, cycles, failure))
        return outcomes

    # ------------------------------------------------------------------
    def timing_summary(self) -> dict:
        """Host-cost accounting for benchmarks and ``RecordResult.host``."""
        timings = [t for _, _, t in self.unit_timings]
        return {
            "jobs": self.jobs,
            "units": len(self.unit_timings),
            "unit_wall": [round(t.wall, 6) for t in timings],
            "unit_cpu": [round(t.cpu, 6) for t in timings],
            "unit_pids": [t.worker_pid for t in timings],
            "dispatch_wall": round(self.dispatch_wall, 6),
            "dispatch_cpu": round(self.dispatch_cpu, 6),
            "faults": dict(self.counters),
            "fault_events": list(self.fault_events),
            "speculation": dict(self.speculation),
            "wire": {
                "bytes_shipped": sum(t.bytes_shipped for t in timings),
                "blobs_sent": sum(t.blobs_sent for t in timings),
                "blob_cache_hits": sum(t.blob_cache_hits for t in timings),
                "blob_cache_misses": sum(t.blob_cache_misses for t in timings),
                "blob_resends": self.blob_resends,
                "unit_bytes": [t.bytes_shipped for t in timings],
            },
        }


class SpeculativeSession:
    """One segment's speculative record-unit dispatches (commit pipeline).

    The recorder creates a session per segment when the two-deep commit
    pipeline is on. :meth:`push` ships one epoch unit to the pool *while
    the thread-parallel run is still producing later epochs* — strictly
    non-blocking, so a broken pool or full queue costs nothing but the
    speculation. :meth:`harvest` collects results at segment end.

    The session never retries, never counts faults, and never kills a
    pool: a speculative attempt that crashes, hangs, misses blobs, or
    raises is simply discarded, and the position runs again through the
    full-knowledge batch with the pool's normal containment. Cache-mirror
    acks are applied at harvest (the worker really did absorb the
    blobs), but observability ingest and timing records are deferred to
    the merge — a discarded or never-consumed result leaves no trace in
    the run metrics, which is what keeps ``jobs=1`` and ``jobs=N``
    metrics identical.
    """

    def __init__(self, executor: HostExecutor, program, machine):
        self.executor = executor
        digest, blob = executor._program_wire(program)
        self._batch = _Batch(
            program=program,
            machine=machine,
            program_digest=digest,
            units=[],
            blobs={digest: blob},
        )

        #: segment position -> {"future": Future|None, "index": int}
        self._entries: Dict[int, Dict[str, object]] = {}
        #: indices pushed before the pool was up, awaiting submission
        self._deferred: List[int] = []
        #: set by the warm-up thread; read (GIL-atomic) by push/harvest
        self._ready = False
        self._warm = threading.Thread(target=self._warm_pool, daemon=True)
        self._warm.start()

    @property
    def blobs(self) -> Dict[int, bytes]:
        """The session-shared blob set speculative units intern into."""
        return self._batch.blobs

    def _warm_pool(self) -> None:
        """Bring the worker pool up off the thread-parallel run's path.

        Spawning worker processes costs ~a second of wall — paid inline
        it would stall the guest at the first speculative dispatch. The
        warm-up overlaps the thread-parallel run instead; pushes arriving
        before the pool is ready are buffered and flushed the moment it
        is (or at harvest, whichever comes first). A failed spawn leaves
        ``_ready`` unset: the buffered units are discarded at harvest and
        the batch path reports the pool problem the normal way. (A fleet
        dispatcher's ``warm`` is a no-op — the service owns the pool.)
        """
        try:
            self.executor._dispatch_path.warm()
            self._ready = True
        except Exception:
            pass

    def _submit(self, index: int) -> None:
        """Dispatch one buffered unit; never raises (None future = lost)."""
        executor = self.executor
        batch = self._batch
        unit = batch.units[index]
        t0 = time.perf_counter()
        c0 = time.thread_time()
        tracer = obs_spans.current()
        span_start = tracer.now() if tracer is not None else 0.0
        future = None
        try:
            dispatcher = executor._dispatch_path
            dispatch = executor._make_dispatch(
                batch, index, pids=dispatcher.pids()
            )
            future = dispatcher.submit(_record_task, dispatch)
        except Exception:
            future = None
        finally:
            executor.dispatch_wall += time.perf_counter() - t0
            executor.dispatch_cpu += time.thread_time() - c0
        if tracer is not None and future is not None:
            tracer.add(
                "dispatch",
                obs_spans.CAT_WIRE,
                span_start,
                tracer.now(),
                args={
                    "position": unit.position,
                    "bytes": batch.bytes_shipped[index],
                    "speculative": True,
                },
            )
        self._entries[unit.position]["future"] = future

    def push(self, unit) -> None:
        """Dispatch one speculative unit; non-blocking, never raises."""
        executor = self.executor
        batch = self._batch
        unit.faults = fault_injection.faults_for(
            executor._fault_specs, "record", unit.position
        )
        index = len(batch.units)
        batch.units.append(unit)
        batch.bytes_shipped.append(0)
        batch.blobs_sent.append(0)
        batch.last_shipped.append(set())
        executor.speculation["dispatched"] += 1
        self._entries[unit.position] = {"future": None, "index": index}
        # Fold finished speculations into the cache mirror *before*
        # building this dispatch: without this, every mid-segment
        # dispatch sees the tracker as it stood at segment start (acks
        # normally arrive at harvest) and re-ships the full blob set —
        # measured at ~100x the steady-state dispatch cost on
        # page-heavy workloads. ``done()`` keeps the sweep non-blocking.
        for entry in self._entries.values():
            future = entry["future"]
            if future is not None and future.done():
                self._settle(entry, timeout=0)
        if not self._ready:
            self._deferred.append(index)
            return
        while self._deferred:
            self._submit(self._deferred.pop(0))
        self._submit(index)

    def _settle(self, entry: Dict[str, object], timeout) -> None:
        """Resolve one future and apply its cache-mirror ack, exactly once.

        Leaves ``entry["outcome"] = (value, timing)`` with ``value`` of
        ``None`` for anything discardable (crash, timeout, NeedBlobs,
        failed submission); idempotent so the eager sweep in
        :meth:`push` and the final pass in :meth:`harvest` compose.
        """
        if "outcome" in entry:
            return
        executor, batch = self.executor, self._batch
        future = entry["future"]
        index = entry["index"]
        value = timing = None
        if future is not None:
            try:
                _, value, timing = future.result(timeout=timeout)
            except Exception:
                future.cancel()
                value = None
        if isinstance(value, NeedBlobs):
            executor._apply_ack(
                value.worker_pid,
                batch.last_shipped[index],
                set(value.evicted) | set(value.missing),
            )
            value = None
        if value is not None and not isinstance(value, WorkerTaskError):
            executor._apply_ack(
                timing.worker_pid, batch.last_shipped[index], timing.evicted
            )
        entry["outcome"] = (value, timing)

    def harvest(self) -> Dict[int, Tuple[object, UnitTiming]]:
        """Wait for every speculative future; return the good outcomes.

        Anything else — worker crash, timeout, NeedBlobs, task error,
        failed submission — is discarded here and the position falls
        through to the full-knowledge dispatch.
        """
        executor, batch = self.executor, self._batch
        self._warm.join()
        if self._ready:
            while self._deferred:
                self._submit(self._deferred.pop(0))
        self._deferred.clear()
        outcomes: Dict[int, Tuple[object, UnitTiming]] = {}
        timeout = executor.unit_timeout or None
        for position in sorted(self._entries):
            entry = self._entries[position]
            self._settle(entry, timeout)
            value, timing = entry["outcome"]
            index = entry["index"]
            if value is None or isinstance(value, WorkerTaskError):
                executor.speculation["discarded"] += 1
                continue
            timing.bytes_shipped = batch.bytes_shipped[index]
            timing.blobs_sent = batch.blobs_sent[index]
            outcomes[position] = (value, timing)
        self._entries.clear()
        return outcomes

    def close(self) -> None:
        """Abandon whatever is still in flight (error-path hygiene)."""
        for entry in self._entries.values():
            future = entry["future"]
            if future is not None:
                future.cancel()
        self._entries.clear()
