"""The worker-pool executor: epoch work units on real host cores.

``HostExecutor`` wraps a spawn-context :class:`ProcessPoolExecutor`.
Spawn (not fork) keeps workers safe on every platform and guarantees
they import a fresh ``repro`` — nothing leaks from the coordinator
except what the work units carry.

Protocol per batch: submit every unit up front, consume results strictly
in position order (the merge on the coordinator is therefore
deterministic regardless of completion order), and on the first
divergence cancel everything not yet started — epochs after a divergence
belong to an abandoned thread-parallel future and their results would be
discarded anyway. A worker that is already mid-epoch runs to completion
harmlessly; its result is dropped.

One shared pool is kept per coordinator process (``shared_pool``) so a
test suite or benchmark sweep pays the spawn cost once, not per
recording. Workers hold no state between units — every unit ships its
own program image and machine config (the pickle memo keeps that cheap,
and the worker-side decode cache rebuild is a pure function of the
code).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator, List, Sequence, Tuple

from repro.core.epoch_runner import EpochRunResult, run_epoch
from repro.host.wire import RecordEpochUnit, ReplayEpochUnit, UnitTiming
from repro.record.sync_log import SyncOrderLog

_shared_pool = None
_shared_size = 0


def _ensure_worker_import_path() -> None:
    """Make sure spawned workers can ``import repro``.

    Spawn re-execs the interpreter, which builds ``sys.path`` from
    ``PYTHONPATH`` — the coordinator may instead have been launched with
    a ``sys.path`` hack (benchmarks do), so the package root is exported
    explicitly.
    """
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    current = os.environ.get("PYTHONPATH", "")
    parts = [p for p in current.split(os.pathsep) if p]
    if root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([root] + parts)


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The coordinator-wide pool, grown (never shrunk) to ``jobs`` workers."""
    global _shared_pool, _shared_size
    if _shared_pool is None or _shared_size < jobs:
        if _shared_pool is not None:
            _shared_pool.shutdown(wait=False, cancel_futures=True)
        _ensure_worker_import_path()
        context = multiprocessing.get_context("spawn")
        _shared_pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
        _shared_size = jobs
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests and benchmark hygiene)."""
    global _shared_pool, _shared_size
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True, cancel_futures=True)
        _shared_pool = None
        _shared_size = 0


# ----------------------------------------------------------------------
# Worker-side task functions (must be module-level for pickling).
# ----------------------------------------------------------------------
def _record_task(payload) -> Tuple[int, EpochRunResult, UnitTiming]:
    program, machine, unit = payload
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = run_epoch(
        program,
        machine,
        unit.epoch_index,
        unit.start,
        unit.boundary,
        unit.syscalls,
        SyncOrderLog(unit.sync_events),
        unit.use_sync_hints,
        signal_records=unit.signals,
    )
    timing = UnitTiming(
        wall=time.perf_counter() - wall0, cpu=time.process_time() - cpu0
    )
    return unit.position, result, timing


def _replay_task(payload):
    # Imported here, not at module top: repro.core.replayer is the only
    # core module this one touches, and it imports us lazily in return.
    from repro.core.replayer import replay_epoch_unit

    program, machine, unit = payload
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    cycles, failure = replay_epoch_unit(program, machine, unit)
    timing = UnitTiming(
        wall=time.perf_counter() - wall0, cpu=time.process_time() - cpu0
    )
    return unit.position, cycles, failure, timing


class HostExecutor:
    """Runs epoch work units on a pool of worker processes.

    ``private=True`` gives the executor its own pool sized exactly
    ``jobs`` (benchmarks measure specific worker counts); the default
    shares the coordinator-wide pool.
    """

    def __init__(self, jobs: int, private: bool = False):
        self.jobs = max(1, int(jobs))
        self._private_pool = None
        if private:
            _ensure_worker_import_path()
            context = multiprocessing.get_context("spawn")
            self._private_pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        #: per-unit worker timings, in merge order: (kind, position, UnitTiming)
        self.unit_timings: List[Tuple[str, int, UnitTiming]] = []
        #: coordinator seconds spent building + submitting payloads
        self.dispatch_wall = 0.0

    def _pool(self) -> ProcessPoolExecutor:
        return self._private_pool or shared_pool(self.jobs)

    def close(self) -> None:
        if self._private_pool is not None:
            self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = None

    # ------------------------------------------------------------------
    def run_record_units(
        self, program, machine, units: Sequence[RecordEpochUnit]
    ) -> Iterator[Tuple[int, EpochRunResult]]:
        """Yield ``(position, result)`` in position order.

        Stops after the first divergence, cancelling all not-yet-started
        units — exactly the serial loop's early exit.
        """
        pool = self._pool()
        start = time.perf_counter()
        futures = [
            pool.submit(_record_task, (program, machine, unit)) for unit in units
        ]
        self.dispatch_wall += time.perf_counter() - start
        try:
            for future in futures:
                position, result, timing = future.result()
                self.unit_timings.append(("record", position, timing))
                if not result.ok:
                    for pending in futures:
                        pending.cancel()
                yield position, result
                if not result.ok:
                    return
        finally:
            for future in futures:
                future.cancel()

    def run_replay_units(
        self, program, machine, units: Sequence[ReplayEpochUnit]
    ) -> List[Tuple[int, int, object]]:
        """All ``(position, cycles, failure)`` results, in position order."""
        pool = self._pool()
        start = time.perf_counter()
        futures = [
            pool.submit(_replay_task, (program, machine, unit)) for unit in units
        ]
        self.dispatch_wall += time.perf_counter() - start
        outcomes = []
        try:
            for future in futures:
                position, cycles, failure, timing = future.result()
                self.unit_timings.append(("replay", position, timing))
                outcomes.append((position, cycles, failure))
        finally:
            for future in futures:
                future.cancel()
        return outcomes

    # ------------------------------------------------------------------
    def timing_summary(self) -> dict:
        """Host-cost accounting for benchmarks and ``RecordResult.host``."""
        return {
            "jobs": self.jobs,
            "units": len(self.unit_timings),
            "unit_wall": [round(t.wall, 6) for _, _, t in self.unit_timings],
            "unit_cpu": [round(t.cpu, 6) for _, _, t in self.unit_timings],
            "dispatch_wall": round(self.dispatch_wall, 6),
        }
