"""Deterministic fault injection for the host worker pool.

Crash, hang, and slow paths in the pool's containment logic are
impossible to exercise with real hardware faults, so this module turns
them into a config/env knob. The coordinator reads ``REPRO_FAULT`` once
per :class:`~repro.host.pool.HostExecutor` and stamps the matching specs
onto each work unit's ``faults`` field; the *worker* then applies them at
the top of its task function. Shipping specs inside the payload (rather
than relying on the worker's inherited environment) makes injection
immune to pool reuse: a shared pool spawned before the env was set still
faults, and workers spawned during a fault test never leak faults into
later batches.

Spec grammar — comma-separated list of::

    [scope:]kind:unit<N>[:seconds][:once]

* ``scope`` — ``record`` or ``replay``; omitted = both.
* ``kind`` — ``crash`` (hard ``os._exit``, breaks the pool), ``hang``
  (sleep ``seconds``, default 3600 — far past any unit timeout),
  ``slow`` (sleep ``seconds``, default 0.05, then run normally), or
  ``error`` (raise inside the worker; exercises the structured
  task-error path).
* ``unit<N>`` — the unit's position *within its batch* (a record
  segment or a whole replay). A recording with several segments fires
  the fault once per matching segment unless ``once`` is given.
* ``once`` — fire on the first matching attempt only, then disarm.
  Workers are separate processes, so the fuse lives on disk:
  ``REPRO_FAULT_STATE`` must name a directory (created if missing).

Examples: ``REPRO_FAULT=crash:unit2``, ``hang:unit1:30``,
``slow:unit0:0.25``, ``record:crash:unit1:once``.

Faults never fire on the coordinator's serial paths (``jobs=1`` and the
retry-exhausted serial fallback) — only the worker task wrappers call
:func:`inject` — so a faulted run always completes, and completes
bit-identically: fault handling changes wall-clock and host accounting,
never a digest, schedule, or recording byte.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

_KINDS = ("crash", "hang", "slow", "error")
_SCOPES = ("record", "replay")

#: sleep lengths when the spec gives no explicit seconds
_DEFAULT_HANG_SECONDS = 3600.0
_DEFAULT_SLOW_SECONDS = 0.05

#: exit status an injected crash dies with (diagnosable in worker logs)
CRASH_EXIT_STATUS = 70


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive (picklable; ships inside work units)."""

    kind: str
    #: unit position within its batch the fault targets
    position: int
    #: "record", "replay", or "" for both
    scope: str = ""
    #: sleep length for hang/slow (0 = kind default)
    seconds: float = 0.0
    once: bool = False
    #: fuse directory for ``once`` (from ``REPRO_FAULT_STATE``)
    state_dir: str = ""

    def matches(self, scope: str, position: int) -> bool:
        return self.position == position and self.scope in ("", scope)

    def _fuse_path(self) -> str:
        name = f"fault-{self.scope or 'any'}-{self.kind}-unit{self.position}"
        return os.path.join(self.state_dir, name)

    def claim(self) -> bool:
        """True if the fault should fire now (consumes the fuse if once)."""
        if not self.once:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        try:
            fd = os.open(self._fuse_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


def parse_fault_specs(raw: str, state_dir: str = "") -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULT``-style spec list. Raises ``ValueError`` on junk."""
    specs = []
    for token in raw.split(","):
        token = token.strip()
        if token:
            specs.append(_parse_one(token, state_dir))
    return tuple(specs)


def _parse_one(token: str, state_dir: str) -> FaultSpec:
    parts = [part.strip() for part in token.split(":") if part.strip()]
    scope = ""
    if parts and parts[0] in _SCOPES:
        scope = parts.pop(0)
    if len(parts) < 2:
        raise ValueError(f"fault spec {token!r}: expected [scope:]kind:unit<N>")
    kind = parts[0]
    if kind not in _KINDS:
        raise ValueError(f"fault spec {token!r}: unknown kind {kind!r} "
                         f"(expected one of {', '.join(_KINDS)})")
    unit = parts[1]
    if not unit.startswith("unit") or not unit[4:].isdigit():
        raise ValueError(f"fault spec {token!r}: expected unit<N>, got {unit!r}")
    position = int(unit[4:])
    seconds = 0.0
    once = False
    for qualifier in parts[2:]:
        if qualifier == "once":
            once = True
        else:
            try:
                seconds = float(qualifier)
            except ValueError:
                raise ValueError(
                    f"fault spec {token!r}: qualifier {qualifier!r} is neither "
                    f"'once' nor a seconds value"
                ) from None
    if once and not state_dir:
        raise ValueError(
            f"fault spec {token!r}: 'once' needs REPRO_FAULT_STATE to point "
            f"at a fuse directory (workers are separate processes)"
        )
    return FaultSpec(
        kind=kind, position=position, scope=scope, seconds=seconds,
        once=once, state_dir=state_dir,
    )


def active_faults() -> Tuple[FaultSpec, ...]:
    """The coordinator's fault directives, from ``REPRO_FAULT``."""
    raw = os.environ.get("REPRO_FAULT", "")
    if not raw:
        return ()
    return parse_fault_specs(raw, os.environ.get("REPRO_FAULT_STATE", ""))


def faults_for(
    specs: Sequence[FaultSpec], scope: str, position: int
) -> Tuple[FaultSpec, ...]:
    """The specs a unit at ``position`` in a ``scope`` batch must carry."""
    return tuple(s for s in specs if s.matches(scope, position))


def inject(specs: Sequence[FaultSpec]) -> None:
    """Apply fault specs; called at the top of worker task functions only."""
    for spec in specs:
        if not spec.claim():
            continue
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_STATUS)
        elif spec.kind == "hang":
            time.sleep(spec.seconds or _DEFAULT_HANG_SECONDS)
        elif spec.kind == "slow":
            time.sleep(spec.seconds or _DEFAULT_SLOW_SECONDS)
        elif spec.kind == "error":
            raise RuntimeError(
                f"injected worker error at unit {spec.position}"
            )
