"""Worker-resident blob caches and the coordinator's view of them.

The content-addressed wire protocol has two halves:

* **Workers** keep a byte-budgeted LRU :class:`BlobCache` of *decoded*
  objects keyed by blob digest — guest pages, shared log/hint tuples,
  and the decoded :class:`~repro.isa.program.ProgramImage` itself (whose
  lazily-built handler table in ``__dict__`` therefore survives across
  units instead of being re-decoded per dispatch). The cache charges the
  encoded blob size, not the decoded object's footprint, because the
  budget exists to bound what the *wire* saved, and evictions must be
  reported so the coordinator stops assuming the worker still holds them.

* The **coordinator** keeps a :class:`WorkerCacheTracker`: per worker
  pid, the set of digests it is believed to hold. A dispatch ships only
  the blobs outside the *intersection* over the current pool's pids —
  ``ProcessPoolExecutor`` gives no control over which worker picks a
  unit up, so a blob may be omitted only when *every* live worker holds
  it. The tracker is advisory, never authoritative: a worker that finds
  a digest missing (restart after a crash, eviction racing an in-flight
  dispatch) answers with a structured ``NeedBlobs`` instead of failing,
  and the coordinator re-dispatches with the full blob set.

Capacity comes from ``REPRO_BLOB_CACHE_MB`` (default 64), read in the
worker process at first use — tests shrink it to force the eviction and
miss/resend paths deterministically.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Set, Tuple

from repro.memory.blob import decode_blob
from repro.memory.page import Page

#: worker blob-cache budget env knob, in megabytes of encoded blob bytes
CACHE_ENV = "REPRO_BLOB_CACHE_MB"
_DEFAULT_CACHE_MB = 64.0


def blob_cache_capacity() -> int:
    """Worker cache budget in bytes (``REPRO_BLOB_CACHE_MB``, default 64)."""
    raw = os.environ.get(CACHE_ENV, "")
    if not raw:
        return int(_DEFAULT_CACHE_MB * 1024 * 1024)
    try:
        return max(0, int(float(raw) * 1024 * 1024))
    except ValueError:
        return int(_DEFAULT_CACHE_MB * 1024 * 1024)


def decode_blob_object(blob: bytes):
    """Decode a wire blob into its live object (pages become ``Page``)."""
    kind, payload = decode_blob(blob)
    if kind == "page":
        return Page(payload)
    return payload


class BlobCache:
    """Byte-budgeted LRU of decoded wire objects, keyed by digest.

    Lives once per worker process (module global in ``repro.host.pool``)
    and once in the coordinator for its serial-fallback-free bookkeeping
    tests. Pages stored here are shared into hydrated snapshots by
    reference; the hydration pin (``refs += 1`` per table entry) plus the
    cache's own reference guarantee ``refs > 1``, so an engine write
    always copies-on-write and a cached page is never mutated in place.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity = max(0, int(capacity_bytes))
        self._entries: "OrderedDict[int, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def has(self, digest: int) -> bool:
        return digest in self._entries

    def get(self, digest: int):
        """The decoded object, refreshed to most-recently-used."""
        entry = self._entries.get(digest)
        if entry is None:
            return None
        self._entries.move_to_end(digest)
        return entry[0]

    def insert(self, digest: int, blob: bytes) -> List[int]:
        """Decode and cache one blob; returns the digests evicted for it.

        An already-present digest is refreshed, not re-decoded. A blob
        larger than the whole budget is decoded but not retained (it
        reports itself as evicted), so a tiny test budget still executes
        every unit — the dispatch's own blobs remain resolvable via the
        per-dispatch memo in the pool layer.
        """
        if digest in self._entries:
            self._entries.move_to_end(digest)
            return []
        size = len(blob)
        self._entries[digest] = (decode_blob_object(blob), size)
        self._bytes += size
        evicted: List[int] = []
        while self._bytes > self.capacity and self._entries:
            old_digest, (_, old_size) = self._entries.popitem(last=False)
            self._bytes -= old_size
            evicted.append(old_digest)
        return evicted

    def missing(self, digests: Iterable[int]) -> List[int]:
        """Digests not currently resident (no LRU refresh, no counting)."""
        return [d for d in digests if d not in self._entries]


class WorkerCacheTracker:
    """Coordinator-side model of which worker pid holds which digests.

    Updated from dispatch acks (what was shipped to the pid that answered,
    minus what it reported evicting); consulted at dispatch-build time.
    Wrong-in-either-direction is safe: over-estimation is corrected by the
    worker's ``NeedBlobs`` answer, under-estimation merely re-ships bytes.

    Internally locked: the tracker is a module global shared by every
    executor (worker caches persist across executors), and with the
    service layer many session threads fold acks and intersect held
    sets concurrently — an unlocked ``common()`` could iterate a set
    another session's ack is mutating.
    """

    def __init__(self):
        self._held: Dict[int, Set[int]] = {}
        self._lock = threading.Lock()

    def note_inserted(self, pid: int, digests: Iterable[int]) -> None:
        if not pid:
            return
        with self._lock:
            self._held.setdefault(pid, set()).update(digests)

    def note_evicted(self, pid: int, digests: Iterable[int]) -> None:
        with self._lock:
            held = self._held.get(pid)
            if held:
                held.difference_update(digests)

    def forget_worker(self, pid: int) -> None:
        with self._lock:
            self._held.pop(pid, None)

    def common(self, pids: Iterable[int]) -> Set[int]:
        """Digests every one of ``pids`` holds (empty if any pid is unknown).

        This is the omission rule: a blob may be left out of a dispatch
        only when no matter which worker pops the unit, it has the blob.
        """
        result: Set[int] = set()
        with self._lock:
            for i, pid in enumerate(pids):
                held = self._held.get(pid)
                if not held:
                    return set()
                if i == 0:
                    result = set(held)
                else:
                    result &= held
                    if not result:
                        return result
        return result

    def prune(self, live_pids: Iterable[int]) -> None:
        """Drop state for pids no longer in the pool (post-rebuild hygiene)."""
        live = set(live_pids)
        with self._lock:
            for pid in list(self._held):
                if pid not in live:
                    del self._held[pid]
