"""Content-addressed epoch work units and the shared blobs they reference.

A work unit must let a worker process reproduce the coordinator's serial
epoch execution *exactly*, with nothing but the unit, the blobs it
references, and the program image. Units used to carry whole pickled
checkpoints and per-unit log slices; they now carry *skeletons* and
*references*, and the heavy bytes travel separately as content-addressed
blobs (:mod:`repro.memory.blob`) that worker caches dedupe across units,
segments, and whole recordings:

* **Checkpoints as skeletons.** A unit's ``start`` is a full
  :class:`~repro.checkpoint.checkpoint.WireCheckpoint` (contexts plus a
  ``{page_no: digest}`` table); a record unit's ``boundary`` is a pure
  *delta* against its start — consecutive checkpoints share almost every
  page object under copy-on-write, so the delta is exactly the epoch's
  dirty pages. Kernel state is stripped: epoch executors inject logged
  syscalls and never touch a live kernel, and forward recovery (which
  does) always runs on the coordinator.

* **Shared log blobs, not per-unit slices.** Syscall/signal injection is
  keyed lookup — ``(tid, seq)`` and ``(tid, retired)`` — so any superset
  of an epoch's reachable records behaves identically (the serial paths
  pass the *full* logs). Each batch therefore interns ONE segment-level
  slice per log (everything reachable from the segment's first
  checkpoint, via :class:`ThreadLogIndex`) and every unit references it
  by digest. This replaces the old per-epoch rescans — O(epochs ×
  records) filtering and O(epochs × slice) wire bytes both collapse to
  O(records) per segment.

* **One hint tuple per segment.** The sync hints a record unit needs are
  the suffix of the segment's acquisition hints from its epoch's start
  mark (cutting them at the epoch boundary would change how the oracle
  hands objects out — see ``DoublePlayRecorder.record``). Suffixes of
  one tuple used to be materialised per unit, duplicating the tail
  O(epochs²); now the batch interns the whole segment tuple once and
  each unit carries its integer start offset.

``BlobRef`` and ``WireCheckpoint`` keep coordinator-side ``_local``
shortcuts to the original objects. They are stripped at the pickle
boundary — a worker always resolves through its cache — but the
executor's serial fallback rehydrates to the exact original objects,
zero-decode and trivially bit-identical to the ``jobs=1`` path.

A worker that cannot resolve every digest a unit references (cache
eviction racing an in-flight dispatch, a fresh pool after a crash)
answers with a structured :class:`NeedBlobs` instead of failing; the
coordinator re-dispatches that unit with the full blob set.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.checkpoint.checkpoint import Checkpoint, WireCheckpoint
from repro.memory.blob import blob_digest, encode_object
from repro.oskernel.syscalls import SyscallRecord


@dataclass
class UnitTiming:
    """Host-side cost of one work unit.

    ``wall``/``cpu``, the blob-cache fields, and the observability
    piggybacks (``spans``/``metrics``) are measured in the worker;
    ``bytes_shipped``/``blobs_sent`` are filled by the coordinator (it is
    the side that knows what crossed the wire, including resends).
    """

    #: worker wall-clock seconds spent executing the unit
    wall: float = 0.0
    #: worker CPU seconds spent executing the unit. On an oversubscribed
    #: host (more workers than cores) this is the honest per-unit cost:
    #: wall time there includes time-slicing against sibling workers.
    cpu: float = 0.0
    #: referenced digests already resident in the worker's blob cache
    blob_cache_hits: int = 0
    #: referenced digests that had to be decoded from the dispatch
    blob_cache_misses: int = 0
    #: pid of the process that ran the unit — a worker's, or the
    #: coordinator's own for serial fallbacks (every executed unit is
    #: attributable to a real track; 0 only on never-run placeholders)
    worker_pid: int = 0
    #: digests the worker evicted while absorbing this unit's dispatch
    evicted: Tuple[int, ...] = ()
    #: wire bytes shipped for this unit (all dispatch attempts)
    bytes_shipped: int = 0
    #: blobs shipped for this unit (all dispatch attempts)
    blobs_sent: int = 0
    #: raw-clock worker spans ``(name, cat, start, end, args)`` collected
    #: when the dispatch asked for tracing (see :mod:`repro.obs.spans`);
    #: the coordinator re-bases them onto its trace timeline
    spans: Tuple[tuple, ...] = ()
    #: worker-process counter delta for this unit, as sorted
    #: ``(name, amount)`` pairs (see :mod:`repro.obs.metrics`)
    metrics: Tuple[Tuple[str, int], ...] = ()


@dataclass
class BlobRef:
    """A by-digest reference to a shared batch blob.

    ``_local`` is the decoded object itself, kept on the coordinator for
    the serial fallback and stripped at the pickle boundary (workers
    resolve the digest through their cache / the dispatch blobs).
    """

    digest: int
    _local: object = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        # A 1-tuple, not the bare int: a falsy state would make pickle
        # skip __setstate__ entirely.
        return (self.digest,)

    def __setstate__(self, state):
        self.digest = state[0]
        self._local = None


@dataclass
class NeedBlobs:
    """A worker's structured "I cannot resolve these digests" response.

    Returned in place of a unit result when a required digest is neither
    in the worker's cache nor in the dispatch; the coordinator answers by
    re-dispatching the unit with every blob it references.
    """

    position: int
    missing: Tuple[int, ...]
    worker_pid: int = 0
    #: digests evicted while absorbing the dispatch that still failed
    evicted: Tuple[int, ...] = ()


@dataclass
class RecordEpochUnit:
    """One epoch of a segment, packaged for a worker process."""

    #: position within the segment (0-based; orders the merge)
    position: int
    #: global epoch index (naming/diagnostics only)
    epoch_index: int
    #: epoch start state as a full skeleton (kernel-stripped)
    start: WireCheckpoint
    #: next checkpoint — per-thread targets + the end state to verify —
    #: as a pure delta against ``start``
    boundary: WireCheckpoint
    #: the segment-level syscall-log slice (shared by every unit)
    syscalls: BlobRef
    #: the segment-level signal-delivery slice (shared by every unit)
    signals: BlobRef
    #: the segment's whole acquisition-hint tuple (shared by every unit)
    sync_events: BlobRef
    #: this unit's start offset into the hint tuple (its hints are the
    #: suffix ``hints[sync_start:]``)
    sync_start: int = 0
    use_sync_hints: bool = True
    #: fault-injection directives for this unit (testing knob; stamped by
    #: the executor from ``REPRO_FAULT``, applied by the worker — see
    #: :mod:`repro.host.faults`). Never part of the recording.
    faults: Tuple = ()

    def required_digests(self) -> Set[int]:
        """Every blob digest a worker must resolve to run this unit."""
        required = set(self.start.blob_digests())
        required.update(self.boundary.blob_digests())
        required.add(self.syscalls.digest)
        required.add(self.signals.digest)
        required.add(self.sync_events.digest)
        return required


@dataclass
class ReplayEpochUnit:
    """One committed epoch of a recording, packaged for parallel replay."""

    #: position within the recording (0-based; orders the merge)
    position: int
    #: the committed epoch's index
    epoch_index: int
    #: epoch start state as a full skeleton (kernel-stripped)
    start: WireCheckpoint
    #: per-thread retired-op targets at the epoch's end boundary
    targets: dict
    #: the committed timeslice schedule to follow (per-epoch, inline)
    schedule: object
    #: the committed acquisition order (per-epoch and disjoint, inline)
    sync_events: Tuple[tuple, ...]
    #: guest-state digest the replay must reach
    end_digest: int
    #: the recording's epoch-reachable syscall log (shared by every unit)
    syscalls: BlobRef
    #: the recording's signal-delivery log (shared by every unit)
    signals: BlobRef
    #: fault-injection directives for this unit (see ``RecordEpochUnit``)
    faults: Tuple = ()

    def required_digests(self) -> Set[int]:
        """Every blob digest a worker must resolve to run this unit."""
        required = set(self.start.blob_digests())
        required.add(self.syscalls.digest)
        required.add(self.signals.digest)
        return required


@dataclass
class UnitBatch:
    """A segment's (or recording's) units plus their shared blob set.

    ``blobs`` holds every blob any unit in the batch references, keyed by
    digest — the executor ships each worker only the subset it is not
    already believed to hold.
    """

    units: List[object]
    blobs: Dict[int, bytes]

    def __len__(self) -> int:
        return len(self.units)


# ----------------------------------------------------------------------
# Log slicing.
# ----------------------------------------------------------------------
class ThreadLogIndex:
    """Per-thread key index over a log, for suffix queries without rescans.

    Built once per log in O(records); each :meth:`slice_from` then costs
    O(selected) plus a bisect per thread, instead of a full-log filter.
    Selection is by per-thread key floor and the result preserves log
    order, so it is exactly equivalent to the old linear filters.
    """

    def __init__(self, records: Sequence, tid_of: Callable, key_of: Callable):
        self._tid_of = tid_of
        self._key_of = key_of
        self._records: List = []
        self._by_tid: Dict[int, Tuple[List[int], List[int]]] = {}
        self._absorb(records, 0)

    def _absorb(self, records: Sequence, start: int) -> None:
        append = self._records.append
        by_tid = self._by_tid
        tid_of, key_of = self._tid_of, self._key_of
        unsorted_tail = False
        for position in range(start, len(records)):
            record = records[position]
            append(record)
            tid, key = tid_of(record), key_of(record)
            entry = by_tid.get(tid)
            if entry is None:
                entry = by_tid[tid] = ([], [])
            keys = entry[0]
            # Per-thread keys are appended in increasing order, so this
            # is a linear pass; a sort below keeps the bisect correct
            # regardless.
            if keys and key < keys[-1]:
                unsorted_tail = True
            keys.append(key)
            entry[1].append(position)
        if unsorted_tail:
            for tid, (keys, positions) in by_tid.items():
                pairs = sorted(zip(keys, positions))
                by_tid[tid] = (
                    [k for k, _ in pairs], [p for _, p in pairs]
                )

    def extend_to(self, records: Sequence) -> "ThreadLogIndex":
        """Absorb records appended to the same log since the index was
        built — O(new records), the streaming commit path's amortizer.

        Only valid when ``records`` is the already-indexed log plus new
        entries at the tail; callers seeing a shrink or an in-place
        rewrite must rebuild instead.
        """
        if len(records) < len(self._records):
            raise ValueError(
                "log shrank since the index was built — rebuild it"
            )
        self._absorb(records, len(self._records))
        return self

    @classmethod
    def for_syscalls(cls, records: Sequence[SyscallRecord]) -> "ThreadLogIndex":
        return cls(records, lambda r: r.tid, lambda r: r.seq)

    @classmethod
    def for_signals(cls, records: Sequence[tuple]) -> "ThreadLogIndex":
        return cls(records, lambda r: r[0], lambda r: r[1])

    def slice_from(self, floors: Dict[int, int]) -> tuple:
        """Records whose key is at least their thread's floor, in log order.

        Threads absent from ``floors`` (spawned after the slicing point)
        keep all their records.
        """
        selected: List[int] = []
        for tid, (keys, positions) in self._by_tid.items():
            lowest = bisect_left(keys, floors.get(tid, 0))
            selected.extend(positions[lowest:])
        selected.sort()
        return tuple(self._records[p] for p in selected)

    def positions_between(
        self, start_floors: Dict[int, int], end_floors: Optional[Dict[int, int]]
    ) -> Tuple[int, ...]:
        """Log positions of records in the half-open per-thread key window
        ``[start_floors[tid], end_floors[tid])``, in log order.

        This is the *shard extent* query of the durable log
        (:mod:`repro.record.shards`): per-epoch per-thread shards are
        exactly these windows between consecutive checkpoints' per-thread
        counts. Floor semantics match :meth:`slice_from`: a thread absent
        from ``start_floors`` starts at 0 (spawned mid-epoch), a thread
        absent from ``end_floors`` keeps everything from its start floor
        (the final, unbounded slice), and ``end_floors=None`` means no
        upper bound for anyone. Records at exactly a checkpoint's count —
        boundary-straddling calls logged at their later completion —
        land in the *following* window, mirroring the floor rule.
        """
        selected: List[int] = []
        for tid, (keys, positions) in self._by_tid.items():
            lowest = bisect_left(keys, start_floors.get(tid, 0))
            if end_floors is None or tid not in end_floors:
                highest = len(keys)
            else:
                highest = bisect_left(keys, end_floors[tid])
            selected.extend(positions[lowest:highest])
        selected.sort()
        return tuple(selected)

    def slice_between(
        self, start_floors: Dict[int, int], end_floors: Optional[Dict[int, int]]
    ) -> tuple:
        """Records of the ``[start, end)`` per-thread window, in log order."""
        return tuple(
            self._records[p]
            for p in self.positions_between(start_floors, end_floors)
        )

    def record_at(self, position: int):
        """The record at a global log position (shard frame rebuild)."""
        return self._records[position]


def syscall_slice(
    records: Sequence[SyscallRecord], start: Checkpoint
) -> Tuple[SyscallRecord, ...]:
    """Records an epoch starting at ``start`` can reach.

    Injection looks up ``(tid, ctx.syscall_count)`` and a thread's count
    starts at the checkpoint's value and only grows, so records below it
    are unreachable. Threads absent from the checkpoint (spawned later)
    start at count 0 and keep everything.
    """
    counts = {tid: ctx.syscall_count for tid, ctx in start.contexts.items()}
    return ThreadLogIndex.for_syscalls(records).slice_from(counts)


def signal_slice(records: Sequence[tuple], start: Checkpoint) -> Tuple[tuple, ...]:
    """Signal deliveries an epoch starting at ``start`` can reach.

    Delivery fires at ``(tid, ctx.retired)`` and retired counts start at
    the checkpoint's values; records below them can never match.
    """
    retired = {tid: ctx.retired for tid, ctx in start.contexts.items()}
    return ThreadLogIndex.for_signals(records).slice_from(retired)


# ----------------------------------------------------------------------
# Batch builders.
# ----------------------------------------------------------------------
def intern_object(obj, blobs: Dict[int, bytes]) -> BlobRef:
    """Encode ``obj`` into the batch blob set and return its reference."""
    blob = encode_object(obj)
    digest = blob_digest(blob)
    blobs.setdefault(digest, blob)
    return BlobRef(digest, obj)


def _intern_pages(checkpoint: Checkpoint, blobs: Dict[int, bytes]) -> None:
    """Add every page of a checkpoint's snapshot to the batch blob set."""
    for page in checkpoint.memory.pages.values():
        digest, blob = page.wire_blob()
        if digest not in blobs:
            blobs[digest] = blob


def record_units_for_segment(
    checkpoints: Sequence[Checkpoint],
    hints: Sequence[tuple],
    hint_marks: Sequence[int],
    syscall_log: Sequence[SyscallRecord],
    signal_log: Sequence[tuple],
    first_epoch_index: int,
    use_sync_hints: bool,
) -> UnitBatch:
    """Package every epoch of a recorded segment as a work-unit batch.

    The logs are sliced ONCE, at segment level: everything reachable from
    the segment's first checkpoint. Per-unit tighter slices would be
    redundant (injection is keyed lookup; extra records are never
    consulted) and would defeat blob sharing across the segment's units.
    """
    blobs: Dict[int, bytes] = {}
    segment_start = checkpoints[0]
    syscalls_ref = intern_object(syscall_slice(syscall_log, segment_start), blobs)
    signals_ref = intern_object(signal_slice(signal_log, segment_start), blobs)
    hints_ref = intern_object(tuple(hints), blobs)
    units = []
    for position in range(len(checkpoints) - 1):
        start = checkpoints[position]
        boundary = checkpoints[position + 1]
        _intern_pages(start, blobs)
        _intern_pages(boundary, blobs)
        units.append(
            RecordEpochUnit(
                position=position,
                epoch_index=first_epoch_index + position,
                start=start.to_wire(),
                boundary=boundary.wire_delta(start),
                syscalls=syscalls_ref,
                signals=signals_ref,
                sync_events=hints_ref,
                sync_start=hint_marks[position],
                use_sync_hints=use_sync_hints,
            )
        )
    return UnitBatch(units, blobs)


def speculative_record_unit(
    position: int,
    epoch_index: int,
    start: Checkpoint,
    boundary: Checkpoint,
    hints_window: Sequence[tuple],
    syscall_log: Sequence[SyscallRecord],
    signal_log: Sequence[tuple],
    use_sync_hints: bool,
    blobs: Dict[int, bytes],
) -> object:
    """Package one epoch for *speculative* dispatch during the TP run.

    Unlike :func:`record_units_for_segment` the segment is still being
    produced, so the unit ships snapshots cut at dispatch time: the hint
    window ``hints[mark:cut]`` as its own tuple (``sync_start=0``) and
    log slices taken from the *current* log prefixes. The recorder
    validates at segment end that nothing arriving after the cut could
    have been consulted (see ``DoublePlayRecorder``); blob interning
    goes through the session-shared ``blobs`` dict so consecutive
    speculative units dedupe their checkpoint pages.
    """
    syscalls_ref = intern_object(syscall_slice(syscall_log, start), blobs)
    signals_ref = intern_object(signal_slice(signal_log, start), blobs)
    hints_ref = intern_object(tuple(hints_window), blobs)
    _intern_pages(start, blobs)
    _intern_pages(boundary, blobs)
    return RecordEpochUnit(
        position=position,
        epoch_index=epoch_index,
        start=start.to_wire(),
        boundary=boundary.wire_delta(start),
        syscalls=syscalls_ref,
        signals=signals_ref,
        sync_events=hints_ref,
        sync_start=0,
        use_sync_hints=use_sync_hints,
    )


def replay_units_for_recording(recording) -> UnitBatch:
    """Package every committed epoch of a recording for parallel replay.

    Requires materialised start checkpoints (like any parallel replay).
    The logs ship whole — exactly what the serial replayer consumes — as
    two blobs shared by every unit.
    """
    from repro.errors import ReplayError

    blobs: Dict[int, bytes] = {}
    syscalls_ref = intern_object(tuple(recording.syscalls_for_epochs()), blobs)
    signals_ref = intern_object(tuple(recording.signal_records), blobs)
    units = []
    for position, epoch in enumerate(recording.epochs):
        start = epoch.start_checkpoint
        if start is None:
            raise ReplayError(
                f"epoch {epoch.index} has no materialised checkpoint; "
                "run materialize_checkpoints() or replay sequentially"
            )
        _intern_pages(start, blobs)
        units.append(
            ReplayEpochUnit(
                position=position,
                epoch_index=epoch.index,
                start=start.to_wire(),
                targets=dict(epoch.targets),
                schedule=epoch.schedule,
                sync_events=epoch.sync_log.events,
                end_digest=epoch.end_digest,
                syscalls=syscalls_ref,
                signals=signals_ref,
            )
        )
    return UnitBatch(units, blobs)
