"""Self-contained epoch work units and the log slices they carry.

A work unit must let a worker process reproduce the coordinator's serial
epoch execution *exactly*, with nothing but the unit and the program
image. Three properties make that possible:

* **Cache stripping.** Everything host-local is dropped at the pickle
  boundary and rebuilt cold on the far side: the decoded handler table on
  :class:`~repro.isa.program.ProgramImage`, the software TLBs on
  :class:`~repro.memory.address_space.AddressSpace`, page reference
  counts (sharing is re-established by the pickle memo within one unit).
  Content-derived caches — page hashes, snapshot folds, checkpoint
  digests — transfer, because they are pure functions of guest state.

* **Suffix-sliced logs.** The syscall and signal logs are sliced to the
  records an epoch starting at checkpoint *S* can possibly consume:
  a record for thread *t* is reachable iff its sequence number is at
  least *S*'s ``syscall_count`` for *t* (injection is keyed by
  ``(tid, seq)`` and counts only grow), and a signal delivery iff its
  retired-count is at least *S*'s ``retired`` for *t*. Threads spawned
  after *S* keep all their records. Dropped records are unreachable, so
  slicing never changes behaviour — it only shrinks the wire payload.
  The *sync* hints are the same start-to-segment-end suffix the serial
  recorder uses; truncating them at the epoch boundary would change how
  the oracle hands objects out (see ``DoublePlayRecorder.record``).

* **Kernel stripping.** Work-unit checkpoints travel via
  :meth:`~repro.checkpoint.checkpoint.Checkpoint.to_wire`: epoch
  executors inject logged syscalls and never touch a live kernel, and
  forward recovery (which does) always runs on the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.checkpoint.checkpoint import Checkpoint
from repro.oskernel.syscalls import SyscallRecord


@dataclass
class UnitTiming:
    """Host-side cost of one work unit, measured in the worker."""

    #: worker wall-clock seconds spent executing the unit
    wall: float = 0.0
    #: worker CPU seconds spent executing the unit. On an oversubscribed
    #: host (more workers than cores) this is the honest per-unit cost:
    #: wall time there includes time-slicing against sibling workers.
    cpu: float = 0.0


@dataclass
class RecordEpochUnit:
    """One epoch of a segment, packaged for a worker process."""

    #: position within the segment (0-based; orders the merge)
    position: int
    #: global epoch index (naming/diagnostics only)
    epoch_index: int
    #: epoch start state, kernel-stripped (``Checkpoint.to_wire``)
    start: Checkpoint
    #: next checkpoint: per-thread targets + the end state to verify
    boundary: Checkpoint
    #: syscall-log suffix reachable from ``start``
    syscalls: Tuple[SyscallRecord, ...]
    #: signal-delivery suffix reachable from ``start``
    signals: Tuple[tuple, ...]
    #: thread-parallel acquisition hints, ``start``-to-segment-end suffix
    sync_events: Tuple[tuple, ...]
    use_sync_hints: bool = True
    #: fault-injection directives for this unit (testing knob; stamped by
    #: the executor from ``REPRO_FAULT``, applied by the worker — see
    #: :mod:`repro.host.faults`). Never part of the recording.
    faults: Tuple = ()


@dataclass
class ReplayEpochUnit:
    """One committed epoch of a recording, packaged for parallel replay."""

    #: position within the recording (0-based; orders the merge)
    position: int
    #: the committed epoch's index
    epoch_index: int
    #: epoch start state, kernel-stripped
    start: Checkpoint
    #: per-thread retired-op targets at the epoch's end boundary
    targets: dict
    #: the committed timeslice schedule to follow
    schedule: object
    #: the committed acquisition order (grant oracle)
    sync_events: Tuple[tuple, ...]
    #: guest-state digest the replay must reach
    end_digest: int
    #: syscall-log suffix reachable from ``start``
    syscalls: Tuple[SyscallRecord, ...]
    #: signal-delivery suffix reachable from ``start``
    signals: Tuple[tuple, ...]
    #: fault-injection directives for this unit (see ``RecordEpochUnit``)
    faults: Tuple = ()


def syscall_slice(
    records: Sequence[SyscallRecord], start: Checkpoint
) -> Tuple[SyscallRecord, ...]:
    """Records an epoch starting at ``start`` can reach.

    Injection looks up ``(tid, ctx.syscall_count)`` and a thread's count
    starts at the checkpoint's value and only grows, so records below it
    are unreachable. Threads absent from the checkpoint (spawned later)
    start at count 0 and keep everything.
    """
    counts = {tid: ctx.syscall_count for tid, ctx in start.contexts.items()}
    return tuple(r for r in records if r.seq >= counts.get(r.tid, 0))


def signal_slice(records: Sequence[tuple], start: Checkpoint) -> Tuple[tuple, ...]:
    """Signal deliveries an epoch starting at ``start`` can reach.

    Delivery fires at ``(tid, ctx.retired)`` and retired counts start at
    the checkpoint's values; records below them can never match.
    """
    retired = {tid: ctx.retired for tid, ctx in start.contexts.items()}
    return tuple(r for r in records if r[1] >= retired.get(r[0], 0))


def record_units_for_segment(
    checkpoints: Sequence[Checkpoint],
    hints: Sequence[tuple],
    hint_marks: Sequence[int],
    syscall_log: Sequence[SyscallRecord],
    signal_log: Sequence[tuple],
    first_epoch_index: int,
    use_sync_hints: bool,
) -> List[RecordEpochUnit]:
    """Package every epoch of a recorded segment as a work unit."""
    units = []
    for position in range(len(checkpoints) - 1):
        start = checkpoints[position]
        units.append(
            RecordEpochUnit(
                position=position,
                epoch_index=first_epoch_index + position,
                start=start.to_wire(),
                boundary=checkpoints[position + 1].to_wire(),
                syscalls=syscall_slice(syscall_log, start),
                signals=signal_slice(signal_log, start),
                sync_events=tuple(hints[hint_marks[position] :]),
                use_sync_hints=use_sync_hints,
            )
        )
    return units


def replay_units_for_recording(recording) -> List[ReplayEpochUnit]:
    """Package every committed epoch of a recording for parallel replay.

    Requires materialised start checkpoints (like any parallel replay).
    """
    from repro.errors import ReplayError

    syscalls = recording.syscalls_for_epochs()
    units = []
    for position, epoch in enumerate(recording.epochs):
        start = epoch.start_checkpoint
        if start is None:
            raise ReplayError(
                f"epoch {epoch.index} has no materialised checkpoint; "
                "run materialize_checkpoints() or replay sequentially"
            )
        units.append(
            ReplayEpochUnit(
                position=position,
                epoch_index=epoch.index,
                start=start.to_wire(),
                targets=dict(epoch.targets),
                schedule=epoch.schedule,
                sync_events=epoch.sync_log.events,
                end_digest=epoch.end_digest,
                syscalls=syscall_slice(syscalls, start),
                signals=signal_slice(recording.signal_records, start),
            )
        )
    return units
