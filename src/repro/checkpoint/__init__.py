"""Checkpoints: point-in-time captures of a whole execution.

DoublePlay's thread-parallel execution takes a checkpoint at every epoch
boundary; those checkpoints are what let epochs of the epoch-parallel
execution run concurrently, each from "a different copy of the memory"
(copy-on-write, so cheap). The same checkpoints seed forward recovery and
parallel replay.
"""

from repro.checkpoint.checkpoint import Checkpoint
from repro.checkpoint.manager import CheckpointManager

__all__ = ["Checkpoint", "CheckpointManager"]
