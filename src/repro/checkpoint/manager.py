"""Checkpoint creation with cost accounting.

Taking a checkpoint quiesces the engine (all cores synchronise to the
latest core clock — the brief pause the paper describes), pins the current
pages into a snapshot, copies thread contexts, and charges the engine
``checkpoint_base + checkpoint_page × pages`` cycles. The per-epoch *real*
cost of checkpointing — copy-on-write page copies as execution dirties
shared pages — is charged where it occurs, on the writing instruction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.checkpoint.checkpoint import Checkpoint
from repro.exec.multicore import MulticoreEngine
from repro.exec.services import LiveSyscalls


class CheckpointManager:
    """Takes and tracks the checkpoints of one recorded execution."""

    def __init__(self) -> None:
        self.taken: List[Checkpoint] = []
        self.total_cost = 0

    def take(self, engine: MulticoreEngine, index: int) -> Checkpoint:
        """Checkpoint a (quiesced) multicore engine; charges its cores."""
        time = engine.quiesce()
        dirty = len(engine.mem.dirty)
        snapshot = engine.mem.snapshot()
        cost = (
            engine.costs.checkpoint_base
            + engine.costs.checkpoint_page * snapshot.page_count()
        )
        engine.advance_all(cost)
        self.total_cost += cost
        kernel_state = None
        if isinstance(engine.services, LiveSyscalls):
            kernel_state = engine.services.kernel.snapshot()
        checkpoint = Checkpoint(
            index=index,
            time=engine.time,
            memory=snapshot,
            contexts={tid: ctx.copy() for tid, ctx in engine.contexts.items()},
            sync_state=engine.sync.snapshot(),
            kernel_state=kernel_state,
            dirty_pages=dirty,
        )
        self.taken.append(checkpoint)
        return checkpoint

    def initial(self, engine: MulticoreEngine) -> Checkpoint:
        """Checkpoint index 0, before any execution (no quiesce cost)."""
        snapshot = engine.mem.snapshot()
        kernel_state = None
        if isinstance(engine.services, LiveSyscalls):
            kernel_state = engine.services.kernel.snapshot()
        checkpoint = Checkpoint(
            index=0,
            time=engine.time,
            memory=snapshot,
            contexts={tid: ctx.copy() for tid, ctx in engine.contexts.items()},
            sync_state=engine.sync.snapshot(),
            kernel_state=kernel_state,
            dirty_pages=0,
        )
        self.taken.append(checkpoint)
        return checkpoint

    def discard_after(self, index: int) -> None:
        """Release checkpoints with index > ``index`` (forward recovery)."""
        kept: List[Checkpoint] = []
        for checkpoint in self.taken:
            if checkpoint.index > index:
                checkpoint.release()
            else:
                kept.append(checkpoint)
        self.taken = kept

    def latest(self) -> Optional[Checkpoint]:
        return self.taken[-1] if self.taken else None
