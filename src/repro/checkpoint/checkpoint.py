"""The checkpoint object.

A checkpoint captures everything needed to (a) re-execute forward from this
point on a fresh engine and (b) decide whether another execution reached
"the same point": a copy-on-write memory snapshot, copies of every thread
context, the exact synchronisation state, and — for live executions — the
kernel state.

The *boundary* of the epoch that starts here is defined per thread: the
retired-op counts stored in the **next** checkpoint's contexts are the
targets the epoch-parallel execution runs each thread to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.context import ThreadContext, ThreadStatus
from repro.memory.address_space import MemorySnapshot
from repro.memory.hashing import combine_hashes, hash_structure


@dataclass
class Checkpoint:
    """One captured execution state."""

    index: int
    time: int
    memory: MemorySnapshot
    contexts: Dict[int, ThreadContext]
    sync_state: Tuple
    kernel_state: Optional[Tuple] = None
    #: pages dirtied in the interval that ended at this checkpoint
    dirty_pages: int = 0
    _digest: Optional[int] = field(default=None, repr=False)
    _ctx_digest: Optional[int] = field(default=None, repr=False)

    def targets(self) -> Dict[int, int]:
        """Per-thread retired-op counts — the epoch boundary definition."""
        return {tid: ctx.retired for tid, ctx in self.contexts.items()}

    def contexts_digest(self) -> int:
        # The checkpoint's contexts are private copies (see
        # CheckpointManager), so the digest can be computed once.
        if self._ctx_digest is None:
            self._ctx_digest = hash_structure(
                [self.contexts[tid].state_tuple() for tid in sorted(self.contexts)]
            )
        return self._ctx_digest

    def digest(self) -> int:
        """Guest-state digest: memory + normalised thread contexts.

        Deliberately excludes kernel and sync-queue state; see
        ``repro.core.divergence`` for why that is the correct equivalence
        for epoch-boundary comparison.
        """
        if self._digest is None:
            self._digest = combine_hashes(
                [self.memory.content_hash(), self.contexts_digest()]
            )
        return self._digest

    def live_threads(self) -> int:
        return sum(
            1
            for ctx in self.contexts.values()
            if ctx.status != ThreadStatus.EXITED
        )

    def copy_contexts(self) -> Dict[int, ThreadContext]:
        """Fresh context copies safe to hand to a new engine."""
        return {tid: ctx.copy() for tid, ctx in self.contexts.items()}

    def to_wire(self) -> "Checkpoint":
        """Host-wire copy for shipping to an epoch-executor process.

        Shares this checkpoint's guest state (pickling the copy is what
        actually duplicates it) but strips the kernel state: epoch
        executors inject logged syscalls and never touch a live kernel —
        only forward recovery needs ``kernel_state``, and recovery always
        runs on the coordinator. The content-derived digest caches
        transfer.
        """
        return Checkpoint(
            index=self.index,
            time=self.time,
            memory=self.memory,
            contexts=self.contexts,
            sync_state=self.sync_state,
            kernel_state=None,
            dirty_pages=self.dirty_pages,
            _digest=self._digest,
            _ctx_digest=self._ctx_digest,
        )

    def release(self) -> None:
        """Drop the memory snapshot's page pins (when discarded)."""
        self.memory.release()

    def __repr__(self) -> str:
        return (
            f"Checkpoint(index={self.index}, time={self.time}, "
            f"threads={len(self.contexts)}, pages={self.memory.page_count()})"
        )
