"""The checkpoint object.

A checkpoint captures everything needed to (a) re-execute forward from this
point on a fresh engine and (b) decide whether another execution reached
"the same point": a copy-on-write memory snapshot, copies of every thread
context, the exact synchronisation state, and — for live executions — the
kernel state.

The *boundary* of the epoch that starts here is defined per thread: the
retired-op counts stored in the **next** checkpoint's contexts are the
targets the epoch-parallel execution runs each thread to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.isa.context import ThreadContext, ThreadStatus
from repro.memory.address_space import MemorySnapshot
from repro.memory.hashing import combine_hashes, hash_structure
from repro.memory.page import Page


@dataclass
class Checkpoint:
    """One captured execution state."""

    index: int
    time: int
    memory: MemorySnapshot
    contexts: Dict[int, ThreadContext]
    sync_state: Tuple
    kernel_state: Optional[Tuple] = None
    #: pages dirtied in the interval that ended at this checkpoint
    dirty_pages: int = 0
    _digest: Optional[int] = field(default=None, repr=False)
    _ctx_digest: Optional[int] = field(default=None, repr=False)

    def targets(self) -> Dict[int, int]:
        """Per-thread retired-op counts — the epoch boundary definition."""
        return {tid: ctx.retired for tid, ctx in self.contexts.items()}

    def contexts_digest(self) -> int:
        # The checkpoint's contexts are private copies (see
        # CheckpointManager), so the digest can be computed once.
        if self._ctx_digest is None:
            self._ctx_digest = hash_structure(
                [self.contexts[tid].state_tuple() for tid in sorted(self.contexts)]
            )
        return self._ctx_digest

    def digest(self) -> int:
        """Guest-state digest: memory + normalised thread contexts.

        Deliberately excludes kernel and sync-queue state; see
        ``repro.core.divergence`` for why that is the correct equivalence
        for epoch-boundary comparison.
        """
        if self._digest is None:
            self._digest = combine_hashes(
                [self.memory.content_hash(), self.contexts_digest()]
            )
        return self._digest

    def live_threads(self) -> int:
        return sum(
            1
            for ctx in self.contexts.values()
            if ctx.status != ThreadStatus.EXITED
        )

    def copy_contexts(self) -> Dict[int, ThreadContext]:
        """Fresh context copies safe to hand to a new engine."""
        return {tid: ctx.copy() for tid, ctx in self.contexts.items()}

    def to_wire(self) -> "WireCheckpoint":
        """Skeleton form for the content-addressed host wire.

        The skeleton names every page by digest instead of carrying its
        bytes (see :class:`WireCheckpoint`); the kernel state is stripped:
        epoch executors inject logged syscalls and never touch a live
        kernel — only forward recovery needs ``kernel_state``, and
        recovery always runs on the coordinator. The content-derived
        digest caches transfer.
        """
        return WireCheckpoint(
            index=self.index,
            time=self.time,
            contexts=self.contexts,
            sync_state=self.sync_state,
            dirty_pages=self.dirty_pages,
            page_table=dict(self.memory.page_digest_table()),
            space_hash=self.memory._hash,
            sorted_keys=self.memory._sorted,
            digest_cache=self._digest,
            ctx_digest_cache=self._ctx_digest,
            _local=self,
        )

    def wire_delta(self, base: "Checkpoint") -> "WireCheckpoint":
        """Delta skeleton: this checkpoint's memory as changes vs ``base``.

        A record unit ships its ``boundary`` this way: consecutive
        checkpoints share almost every page object (copy-on-write), so
        the delta is exactly the epoch's dirty pages. Pages whose objects
        differ but whose contents are digest-equal are treated as
        unchanged — hydration then maps both checkpoints to the *same*
        page object, which only widens the divergence check's identity
        fast path.
        """
        base_pages = base.memory.pages
        changes: Dict[int, int] = {}
        for no, page in self.memory.pages.items():
            other = base_pages.get(no)
            if other is page:
                continue
            digest = page.wire_blob()[0]
            if other is not None and other.wire_blob()[0] == digest:
                continue
            changes[no] = digest
        drops = tuple(no for no in base_pages if no not in self.memory.pages)
        return WireCheckpoint(
            index=self.index,
            time=self.time,
            contexts=self.contexts,
            sync_state=self.sync_state,
            dirty_pages=self.dirty_pages,
            page_table=None,
            page_changes=changes,
            page_drops=drops,
            space_hash=self.memory._hash,
            sorted_keys=self.memory._sorted,
            digest_cache=self._digest,
            ctx_digest_cache=self._ctx_digest,
            _local=self,
        )

    def release(self) -> None:
        """Drop the memory snapshot's page pins (when discarded)."""
        self.memory.release()

    def __repr__(self) -> str:
        return (
            f"Checkpoint(index={self.index}, time={self.time}, "
            f"threads={len(self.contexts)}, pages={self.memory.page_count()})"
        )


@dataclass
class WireCheckpoint:
    """A checkpoint skeleton for the content-addressed host wire.

    Carries everything a worker needs to rebuild the checkpoint *except*
    page contents: memory is a ``{page_no: digest}`` table (full form) or
    a ``(changes, drops)`` delta against another checkpoint's table, and
    the bytes travel separately as ``(digest, blob)`` pairs that worker
    caches dedupe across units, epochs, and whole recordings (see
    :mod:`repro.host.blobs`).

    ``_local`` is a coordinator-side shortcut: the original
    :class:`Checkpoint` the skeleton was built from. It is stripped at
    the pickle boundary, so a worker never sees it, but the coordinator's
    serial fallback hydrates to the exact original object — zero decode,
    and trivially bit-identical to the ``jobs=1`` path.
    """

    index: int
    time: int
    contexts: Dict[int, ThreadContext]
    sync_state: Tuple
    dirty_pages: int = 0
    #: full digest table, or ``None`` when this skeleton is a delta
    page_table: Optional[Dict[int, int]] = None
    #: delta form: pages added/changed vs the base table
    page_changes: Dict[int, int] = field(default_factory=dict)
    #: delta form: pages present in the base but unmapped here
    page_drops: Tuple[int, ...] = ()
    #: content-derived caches — transfer so workers never recompute them
    space_hash: Optional[int] = None
    sorted_keys: Optional[List[int]] = None
    digest_cache: Optional[int] = None
    ctx_digest_cache: Optional[int] = None
    _local: Optional[Checkpoint] = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_local"] = None  # coordinator-only shortcut, never shipped
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    @property
    def is_delta(self) -> bool:
        return self.page_table is None

    def blob_digests(self) -> Iterable[int]:
        """Every page digest a worker must resolve to hydrate this skeleton."""
        if self.page_table is not None:
            return self.page_table.values()
        return self.page_changes.values()

    def hydrate(
        self,
        resolve: Callable[[int], Page],
        base_pages: Optional[Dict[int, Page]] = None,
    ) -> Checkpoint:
        """Rebuild a working :class:`Checkpoint` from the skeleton.

        ``resolve`` maps a digest to a (cache-resident or just-decoded)
        :class:`Page`; a delta skeleton additionally needs ``base_pages``,
        the hydrated page table of the checkpoint it was deltaed against.
        Every table entry pins a reference on its page, exactly like
        ``AddressSpace.snapshot()`` — cached pages therefore always have
        ``refs > 1`` and copy-on-write before any engine can touch them.
        Equal-digest entries share one page object, which preserves (and
        on all-zero pages widens) the divergence check's identity fast
        path.
        """
        if self._local is not None:
            return self._local
        if self.page_table is not None:
            pages = {no: resolve(digest) for no, digest in self.page_table.items()}
        else:
            if base_pages is None:
                raise ValueError("delta skeleton hydrated without its base")
            pages = dict(base_pages)
            for no, digest in self.page_changes.items():
                pages[no] = resolve(digest)
            for no in self.page_drops:
                pages.pop(no, None)
        for page in pages.values():
            page.refs += 1
        snapshot = MemorySnapshot(
            pages,
            list(self.sorted_keys) if self.sorted_keys is not None else None,
        )
        snapshot._hash = self.space_hash
        return Checkpoint(
            index=self.index,
            time=self.time,
            memory=snapshot,
            contexts=self.contexts,
            sync_state=self.sync_state,
            kernel_state=None,
            dirty_pages=self.dirty_pages,
            _digest=self.digest_cache,
            _ctx_digest=self.ctx_digest_cache,
        )

    def __repr__(self) -> str:
        form = "delta" if self.is_delta else "full"
        pages = len(self.page_changes) if self.is_delta else len(self.page_table)
        return (
            f"WireCheckpoint(index={self.index}, {form}, pages={pages}, "
            f"threads={len(self.contexts)})"
        )
