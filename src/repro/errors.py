"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when a guest program cannot be assembled (bad label, operand...)."""


class GuestFault(ReproError):
    """Raised when a guest program performs an illegal operation.

    Examples: load/store outside any mapped page, division by zero,
    unlocking a mutex the thread does not hold, joining an unknown thread.
    """

    def __init__(self, message: str, tid: int = -1, pc: int = -1):
        super().__init__(message)
        self.tid = tid
        self.pc = pc


class SyscallError(GuestFault):
    """Raised when a guest issues a malformed or unsupported system call."""


class SimulationError(ReproError):
    """Raised when the simulation itself reaches an invalid state.

    This indicates a bug in the engine or a configuration error, never a
    legal guest behaviour.
    """


class DeadlockError(SimulationError):
    """Raised when no runnable thread exists but the program has not exited."""

    def __init__(self, message: str, blocked_tids=()):
        super().__init__(message)
        self.blocked_tids = tuple(blocked_tids)


class ReplayError(ReproError):
    """Raised when a replay cannot follow its recording.

    A correct recording always replays; this error means the recording is
    corrupt or was produced by an incompatible configuration.
    """


class HostPoolError(ReproError):
    """Base class for host worker-pool failures.

    These describe *host* misbehaviour — a worker process crashing,
    hanging, or raising — never guest behaviour. They are containment
    records as much as exceptions: the pool executor creates them as
    structured results, counts them, retries the unit once, and falls back
    to in-coordinator execution, so under the default policy they are
    reported on ``RecordResult.host`` / ``ReplayResult.host`` rather than
    raised. All subclasses pickle cleanly (instances cross the process
    boundary as worker results).
    """

    #: short machine-readable kind tag ("crash", "timeout", "task-error")
    kind = "host"

    def __init__(self, message: str, position: int = -1, attempt: int = 0):
        super().__init__(message)
        #: the failed unit's position within its batch
        self.position = position
        #: 0-based attempt number at which the failure was observed
        self.attempt = attempt

    def __reduce__(self):
        return type(self), (self.args[0] if self.args else "", self.position,
                            self.attempt)


class WorkerCrashError(HostPoolError):
    """A worker process died mid-unit (the pool came back broken).

    The crash is attributed to the unit the coordinator was waiting on;
    sibling units killed as collateral are resubmitted without blame.
    """

    kind = "crash"


class WorkerTimeoutError(HostPoolError):
    """A unit exceeded the configured per-unit timeout (hung worker)."""

    kind = "timeout"

    def __init__(
        self,
        message: str,
        position: int = -1,
        attempt: int = 0,
        timeout: float = 0.0,
    ):
        super().__init__(message, position, attempt)
        #: the per-unit timeout (seconds) that expired
        self.timeout = timeout

    def __reduce__(self):
        return type(self), (self.args[0] if self.args else "", self.position,
                            self.attempt, self.timeout)


class WorkerTaskError(HostPoolError):
    """A unit raised inside the worker; the exception, made structured.

    The worker converts any task exception into this picklable record and
    returns it as the unit's result, so one bad unit can never poison the
    pool. Deterministic guest errors reproduce during the serial fallback
    and are re-raised there with full coordinator context.
    """

    kind = "task-error"

    def __init__(
        self,
        message: str,
        position: int = -1,
        attempt: int = 0,
        exc_type: str = "",
        traceback_text: str = "",
    ):
        super().__init__(message, position, attempt)
        #: the original exception's class name
        self.exc_type = exc_type
        #: the worker-side formatted traceback
        self.traceback_text = traceback_text

    def __reduce__(self):
        return type(self), (self.args[0] if self.args else "", self.position,
                            self.attempt, self.exc_type, self.traceback_text)


class DivergenceSignal(ReproError):
    """Internal control-flow signal: an epoch-parallel run diverged.

    Raised by the epoch runner when it can prove mid-epoch that the
    uniprocessor re-execution no longer follows the thread-parallel run
    (syscall mismatch, deadlock against the logged boundary). The recorder
    catches it and triggers forward recovery; it never escapes the library.
    """

    def __init__(self, reason: str, epoch_index: int = -1):
        super().__init__(reason)
        self.reason = reason
        self.epoch_index = epoch_index
