"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when a guest program cannot be assembled (bad label, operand...)."""


class GuestFault(ReproError):
    """Raised when a guest program performs an illegal operation.

    Examples: load/store outside any mapped page, division by zero,
    unlocking a mutex the thread does not hold, joining an unknown thread.
    """

    def __init__(self, message: str, tid: int = -1, pc: int = -1):
        super().__init__(message)
        self.tid = tid
        self.pc = pc


class SyscallError(GuestFault):
    """Raised when a guest issues a malformed or unsupported system call."""


class SimulationError(ReproError):
    """Raised when the simulation itself reaches an invalid state.

    This indicates a bug in the engine or a configuration error, never a
    legal guest behaviour.
    """


class DeadlockError(SimulationError):
    """Raised when no runnable thread exists but the program has not exited."""

    def __init__(self, message: str, blocked_tids=()):
        super().__init__(message)
        self.blocked_tids = tuple(blocked_tids)


class ReplayError(ReproError):
    """Raised when a replay cannot follow its recording.

    A correct recording always replays; this error means the recording is
    corrupt or was produced by an incompatible configuration.
    """


class DivergenceSignal(ReproError):
    """Internal control-flow signal: an epoch-parallel run diverged.

    Raised by the epoch runner when it can prove mid-epoch that the
    uniprocessor re-execution no longer follows the thread-parallel run
    (syscall mismatch, deadlock against the logged boundary). The recorder
    catches it and triggers forward recovery; it never escapes the library.
    """

    def __init__(self, reason: str, epoch_index: int = -1):
        super().__init__(reason)
        self.reason = reason
        self.epoch_index = epoch_index
