"""Machine configuration and the cycle cost model.

Every duration in the library comes from this table, so experiments that
sweep a cost (e.g. the checkpoint-cost ablation) replace one field and
re-run. Values are chosen to sit in realistic *ratios* — a syscall is tens
of ALU ops, a copied page costs roughly a page worth of word copies, a CREW
page-protection fault is on the order of a syscall — because the paper's
shapes depend on ratios, not on absolute nanoseconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the execution engines."""

    #: plain ALU / register instruction
    alu: int = 1
    #: taken or not-taken branch, call, ret
    branch: int = 1
    #: load or store hitting guest memory
    mem: int = 2
    #: atomic read-modify-write
    atomic: int = 6
    #: uncontended synchronisation operation (lock/unlock/sem/barrier entry)
    sync: int = 8
    #: spawning a thread
    spawn: int = 60
    #: completing a previously granted blocked op
    grant: int = 2
    #: syscall trap overhead, on top of per-word transfer cost
    syscall_base: int = 80
    #: per word moved between kernel and guest buffers
    io_word: int = 1
    #: scheduler context switch between guest threads on one core
    context_switch: int = 15
    #: copy-on-write clone of one page (charged to the writer)
    page_cow_copy: int = 10
    #: hashing one page during a divergence check
    page_hash: int = 4
    #: fixed cost of taking a checkpoint (quiesce + bookkeeping)
    checkpoint_base: int = 60
    #: per page referenced by a new checkpoint
    checkpoint_page: int = 1
    #: restoring an execution from a checkpoint (forward recovery, replay)
    restore_base: int = 300
    #: handing a checkpoint to a spare core to start an epoch
    epoch_dispatch: int = 60
    #: one CREW page-protection fault + ownership transfer (baseline only)
    crew_fault: int = 90
    #: logging one value-log entry (baseline only)
    value_log_entry: int = 3

    def replace(self, **overrides) -> "CostModel":
        """A copy with some fields overridden (for ablation sweeps)."""
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine: cores plus the cost model.

    ``quantum`` is the timeslice used whenever guest threads share a core —
    both by the multicore engine when oversubscribed and by the
    uniprocessor engine that DoublePlay's epoch-parallel execution runs on.
    """

    cores: int = 4
    quantum: int = 600
    costs: CostModel = CostModel()
    #: hard cap on retired ops per execution (infinite-loop guard)
    max_ops: int = 20_000_000

    def with_cores(self, cores: int) -> "MachineConfig":
        return dataclasses.replace(self, cores=cores)

    def replace(self, **overrides) -> "MachineConfig":
        return dataclasses.replace(self, **overrides)
