"""Simulated machine configuration: core counts and the cycle cost model."""

from repro.machine.config import CostModel, MachineConfig

__all__ = ["CostModel", "MachineConfig"]
