"""Table-driven rendering of a run's :class:`RunMetrics` summary.

One declarative row table drives every host-accounting line the CLI
prints after a record or replay — fault containment, wire traffic,
durable-log and flight-recorder accounting. Adding a line of accounting
means adding a row here, not a function in ``cli.py``; both ``record``
and ``replay`` (and the service driver) render through the same
:func:`render_metric_lines`.

Histogram rows render for free: every latency/size distribution the run
collected (:mod:`repro.obs.histo` — the ``histo`` metrics group) gets a
``p50/p90/p99`` line, labelled and unit-formatted by
:data:`HISTOGRAM_LABELS` with a plain fallback for names nobody
registered. A new ``histo.observe`` call site anywhere in the tree
shows up in the CLI summary with zero CLI changes.
"""

from __future__ import annotations

from typing import List

#: One entry per counter-accounting line: a title, the (group, counter)
#: gates that decide whether the line prints at all, and the cells —
#: ``(format, group, counter)`` — it renders from the run's RunMetrics.
SUMMARY_ROWS = (
    {
        "title": "host faults contained",
        "gate": (
            ("faults", "crashes"),
            ("faults", "timeouts"),
            ("faults", "task_errors"),
            ("faults", "retries"),
            ("faults", "serial_fallbacks"),
        ),
        "cells": (
            ("{} crash(es), ", "faults", "crashes"),
            ("{} timeout(s), ", "faults", "timeouts"),
            ("{} task error(s); ", "faults", "task_errors"),
            ("{} retried, ", "faults", "retries"),
            ("{} serial fallback(s)", "faults", "serial_fallbacks"),
        ),
        "suffix": " — recording/verdict unaffected",
    },
    {
        "title": "host wire",
        "gate": (("wire", "blobs_sent"), ("wire", "blob_cache_hits")),
        "cells": (
            ("{} bytes in ", "wire", "bytes_shipped"),
            ("{} blob(s) across ", "wire", "blobs_sent"),
            ("{} unit(s); ", "host", "units"),
            ("{} cache hit(s), ", "wire", "blob_cache_hits"),
            ("{} resend(s)", "wire", "blob_resends"),
        ),
        "suffix": "",
    },
    {
        "title": "durable log",
        "gate": (("durable", "epochs"),),
        "cells": (
            ("{} epoch(s), ", "durable", "epochs"),
            ("{} shard byte(s) -> ", "durable", "shard_bytes"),
            ("{} on disk; ", "durable", "segment_bytes"),
            ("{} group commit(s), ", "durable", "group_commits"),
            ("{} fsync(s), ", "durable", "fsyncs"),
            ("{} blob(s) stored", "durable", "blobs_written"),
        ),
        "suffix": "",
    },
    {
        "title": "flight recorder",
        "gate": (
            ("durable", "window_slides"),
            ("durable", "segments_deleted"),
            ("durable", "pack_compactions"),
        ),
        "cells": (
            ("{} window slide(s) dropped ", "durable", "window_slides"),
            ("{} epoch(s); ", "durable", "window_epochs_dropped"),
            ("{} segment(s) deleted, ", "durable", "segments_deleted"),
            ("{} pack compaction(s); ", "durable", "pack_compactions"),
            ("{} segment + ", "durable", "segment_bytes_reclaimed"),
            ("{} pack byte(s) reclaimed", "durable", "pack_bytes_reclaimed"),
        ),
        "suffix": "",
    },
    {
        "title": "metrics dropped",
        "gate": (("obs", "metrics_dropped"),),
        "cells": (
            ("{} non-numeric value(s) dropped merging worker payloads "
             "(schema drift?)", "obs", "metrics_dropped"),
        ),
        "suffix": "",
    },
)

#: histogram name → (display label, unit) for the quantile lines;
#: unknown names fall back to the raw name and unitless formatting.
HISTOGRAM_LABELS = {
    "epoch_cycles": ("epoch length", "cycles"),
    "unit_wall_s": ("unit latency", "s"),
    "commit_wall_s": ("commit latency", "s"),
    "unit_bytes": ("unit ship size", "bytes"),
    "admission_wait_s": ("admission wait", "s"),
}


def _format_value(value: float, unit: str) -> str:
    if unit == "s":
        return f"{value * 1e3:.2f}ms"
    if unit == "bytes":
        if value >= 1024:
            return f"{value / 1024:.1f}KiB"
        return f"{value:.0f}B"
    if unit == "cycles":
        return f"{value:.0f}"
    return f"{value:.4g}"


def render_metric_lines(metrics) -> List[str]:
    """Every summary line the run's metrics justify, in display order."""
    lines: List[str] = []
    for row in SUMMARY_ROWS:
        if not any(metrics.get(group, key) for group, key in row["gate"]):
            continue
        cells = "".join(
            fmt.format(metrics.get(group, key))
            for fmt, group, key in row["cells"]
        )
        lines.append(f"{row['title']}: {cells}{row['suffix']}")
    for name in metrics.histogram_names():
        histogram = metrics.histogram(name)
        if not histogram:
            continue
        label, unit = HISTOGRAM_LABELS.get(name, (name, ""))
        quantiles = histogram.quantiles((0.50, 0.90, 0.99))
        cells = " ".join(
            f"{q}={_format_value(value, unit)}"
            for q, value in quantiles.items()
        )
        lines.append(f"{label}: {cells} (n={histogram.count})")
    return lines


def print_summary(metrics, out, indent: str = "  ") -> None:
    """Render and print (the CLI's one call site per command)."""
    for line in render_metric_lines(metrics):
        print(f"{indent}{line}", file=out)
