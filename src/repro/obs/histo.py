"""Log-bucketed mergeable latency histograms.

The telemetry plane needs *distributions*, not just counters: an
operator watching a thousand concurrent sessions cares about p99 epoch
latency and whether the tail is moving, and a single mean hides both.
:class:`LogHistogram` is the one histogram type used everywhere:

* **Log-spaced buckets.** Bucket ``i`` covers values in
  ``[10**(i/B), 10**((i+1)/B))`` with ``B = BUCKETS_PER_DECADE``
  sub-buckets per decade — constant *relative* resolution (~33% wide at
  B=8) over any dynamic range, the same scheme HDR-style histograms and
  Prometheus native histograms use. A bucket is just an integer index,
  so a histogram is a sparse ``{index: count}`` dict.
* **Mergeable, associatively and commutatively.** Merging is integer
  addition per bucket, so quantiles computed from merged worker
  histograms are identical no matter how the observations were
  partitioned — the property that makes ``jobs=1`` and ``jobs=N``
  distributions comparable at all.
* **Counter-encoded on the wire.** :func:`observe` writes bucket
  increments into the process stats registry under dotted names
  (``histo.<name>.b<index>``). That means histogram data rides the
  *existing* worker→``UnitTiming.metrics``→coordinator round-trip with
  zero wire-format changes, obeys the same drop-with-the-result rule
  that keeps metrics identical across jobs counts, and lands in
  ``RunMetrics`` (group ``histo``) where
  :meth:`~repro.obs.metrics.RunMetrics.histogram` reconstructs it.

Observation sites are epoch/unit/admission granularity only — never
per-op — so the cost is a ``math.log10`` and a dict increment a few
dozen times per run. ``REPRO_HISTOGRAMS=0`` switches collection off
entirely (one module-global check per site, same contract as spans).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.obs import metrics as obs_metrics

#: log-spaced sub-buckets per decade: ~33% relative bucket width
BUCKETS_PER_DECADE = 8

#: values at or below this observe as the smallest representable bucket
#: (latencies of exactly 0 happen when perf_counter granularity rounds
#: a tiny interval away; they must not crash the log)
_FLOOR = 1e-9

#: the dotted-counter namespace histograms are encoded under
GROUP = "histo"


def bucket_index(value: float) -> int:
    """The log-spaced bucket index holding ``value``."""
    return math.floor(math.log10(max(value, _FLOOR)) * BUCKETS_PER_DECADE)


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper edge of bucket ``index``."""
    return 10.0 ** ((index + 1) / BUCKETS_PER_DECADE)


def bucket_mid(index: int) -> float:
    """Geometric midpoint of bucket ``index`` (the quantile estimate)."""
    return 10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE)


class LogHistogram:
    """A sparse log-bucketed histogram: ``{bucket index: count}``."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Mapping[int, int]] = None):
        self.counts: Dict[int, int] = dict(counts or {})

    # ------------------------------------------------------------------
    def observe(self, value: float, count: int = 1) -> None:
        index = bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + count

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        return self

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:
        return f"LogHistogram(n={self.count}, buckets={len(self.counts)})"

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, estimated at the bucket's midpoint."""
        total = self.count
        if total == 0:
            return 0.0
        rank = min(total, max(1, math.ceil(q * total)))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return bucket_mid(index)
        return bucket_mid(max(self.counts))

    def quantiles(self, qs: Iterable[float] = (0.50, 0.90, 0.99)) -> Dict[str, float]:
        return {f"p{int(q * 100)}": self.quantile(q) for q in qs}

    def cumulative_buckets(self) -> Iterable[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            yield bucket_upper_bound(index), seen

    # ------------------------------------------------------------------
    # Counter encoding (the wire / RunMetrics representation).
    # ------------------------------------------------------------------
    def to_counters(self, name: str) -> Dict[str, int]:
        """Flat ``{"<name>.b<index>": count}`` encoding."""
        return {f"{name}.b{index}": count for index, count in self.counts.items()}

    @classmethod
    def from_counters(cls, name: str, counters: Mapping[str, int]) -> "LogHistogram":
        """Rebuild from a flat counter mapping (ignores foreign keys)."""
        prefix = f"{name}.b"
        counts: Dict[int, int] = {}
        for key, count in counters.items():
            if key.startswith(prefix):
                try:
                    counts[int(key[len(prefix) :])] = int(count)
                except ValueError:
                    continue
        return cls(counts)


# ----------------------------------------------------------------------
# Process-wide collection (the instrumentation-site API).
# ----------------------------------------------------------------------
_enabled = os.environ.get("REPRO_HISTOGRAMS", "1") != "0"


def enabled() -> bool:
    return _enabled


def set_enabled(on: bool) -> bool:
    """Flip collection on/off; returns the previous state."""
    global _enabled
    previous, _enabled = _enabled, bool(on)
    return previous


def observe(name: str, value: float) -> None:
    """Count ``value`` into the named histogram in this thread's registry.

    The increment is an ordinary dotted stats counter
    (``histo.<name>.b<index>``), so it follows whatever registry scoping
    and worker round-trip rules counters already follow.
    """
    if not _enabled:
        return
    obs_metrics.process_stats().add(
        f"{GROUP}.{name}.b{bucket_index(value)}", 1
    )


def histogram_names(counters: Mapping[str, int]) -> Tuple[str, ...]:
    """Distinct histogram names present in a ``histo``-group mapping."""
    names = set()
    for key in counters:
        name, sep, tail = key.rpartition(".b")
        if sep and name:
            try:
                int(tail)
            except ValueError:
                continue
            names.add(name)
    return tuple(sorted(names))
