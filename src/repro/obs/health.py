"""Health/SLO evaluation for the record service.

Always-on recording lives or dies by cheap health signals: an operator
must see a stalled lane or a serial-fallback spike *while it happens*,
not in a post-mortem trace. :func:`evaluate` is a pure function from a
telemetry snapshot (produced by
:class:`repro.obs.expo.TelemetryHub.snapshot`) and a
:class:`HealthPolicy` to a :class:`HealthReport` — pure so every
detector is unit-testable on synthetic snapshots, with no service or
clock behind it.

Detectors:

* **stalled-lane** — a running session with at least
  ``min_commits_for_stall`` commits whose time since the last epoch
  commit exceeds ``stall_factor`` × its median inter-commit interval.
  Self-scaling: a slow workload with slow epochs isn't stalled, a fast
  one that went quiet is.
* **admission-wait** — a session waited longer than
  ``max_admission_wait`` seconds for its slot (the service is
  saturated beyond its queueing budget).
* **fault-rate** — contained worker faults (crashes, timeouts, task
  errors) exceed ``fault_budget``. Containment means correctness
  survived, but every fault burned a pool rebuild and wall-clock —
  an unhealthy fleet even when every answer is right.
* **serial-fallback** — serial fallbacks exceed ``fallback_budget``:
  the parallel plane is degrading to jobs=1 behavior.
* **dedup-regression** — with ``expect_dedup`` set (the service sets
  it when tenants share a workload) and at least
  ``dedup_min_sessions`` completed, zero cross-session cache hits
  means the fleet-wide blob dedup broke: every tenant is re-shipping
  bytes the fleet already holds.

The report drives the ``/healthz`` endpoint (200 ok / 503 degraded)
and, for organic degradation — not deliberately injected faults — a
non-zero ``repro serve --verify`` exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"


@dataclass(frozen=True)
class HealthPolicy:
    """SLO thresholds (the defaults are deliberately strict: a clean
    run has zero faults, zero fallbacks, and every lane commits)."""

    #: a lane is stalled past ``factor × median inter-commit interval``
    stall_factor: float = 8.0
    #: ignore lanes with fewer commits (no baseline to judge against)
    min_commits_for_stall: int = 3
    #: a stall verdict needs at least this much absolute silence, so
    #: microsecond-epoch workloads don't flag scheduler jitter
    min_stall_seconds: float = 0.25
    #: admission-wait SLO in seconds (None disables the detector)
    max_admission_wait: Optional[float] = None
    #: contained worker faults allowed before the fleet is degraded
    fault_budget: int = 0
    #: serial fallbacks allowed before the fleet is degraded
    fallback_budget: int = 0
    #: evaluate the dedup detector at all (the service opts in when the
    #: tenants are known to share a workload)
    expect_dedup: bool = False
    #: completed sessions needed before zero cross-hits means regression
    dedup_min_sessions: int = 4


@dataclass
class HealthReport:
    """One evaluation: overall status plus every firing detector."""

    status: str = STATUS_OK
    problems: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def add(self, detector: str, detail: str, **data) -> None:
        self.status = STATUS_DEGRADED
        problem: Dict[str, object] = {"detector": detector, "detail": detail}
        problem.update(data)
        self.problems.append(problem)

    def to_plain(self) -> Dict[str, object]:
        return {"status": self.status, "problems": list(self.problems)}


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 0.0


def evaluate(
    snapshot: Dict[str, object], policy: Optional[HealthPolicy] = None
) -> HealthReport:
    """Judge one telemetry snapshot against the policy (pure)."""
    policy = policy or HealthPolicy()
    report = HealthReport()
    now = float(snapshot.get("now", 0.0))
    sessions = snapshot.get("sessions", [])

    total_faults = 0
    total_fallbacks = 0
    for session in sessions:
        sid = session.get("sid", "?")
        total_faults += int(session.get("faults", 0))
        total_fallbacks += int(session.get("serial_fallbacks", 0))

        wait = float(session.get("admission_wait", 0.0))
        if (
            policy.max_admission_wait is not None
            and wait > policy.max_admission_wait
        ):
            report.add(
                "admission-wait",
                f"session {sid} waited {wait:.3f}s for admission "
                f"(SLO {policy.max_admission_wait:.3f}s)",
                sid=sid,
                wait=round(wait, 6),
            )

        if session.get("status") != "running":
            continue
        intervals = list(session.get("commit_intervals", ()))
        last_commit = session.get("last_commit_t")
        if (
            last_commit is None
            or len(intervals) < policy.min_commits_for_stall
        ):
            continue
        median = _median(intervals)
        silence = now - float(last_commit)
        limit = max(policy.stall_factor * median, policy.min_stall_seconds)
        if silence > limit:
            report.add(
                "stalled-lane",
                f"session {sid}: no epoch commit for {silence:.3f}s "
                f"(median interval {median:.3f}s, limit {limit:.3f}s)",
                sid=sid,
                silence=round(silence, 6),
                median_interval=round(median, 6),
            )

    if total_faults > policy.fault_budget:
        report.add(
            "fault-rate",
            f"{total_faults} contained worker fault(s) exceed the "
            f"budget of {policy.fault_budget}",
            faults=total_faults,
        )
    if total_fallbacks > policy.fallback_budget:
        report.add(
            "serial-fallback",
            f"{total_fallbacks} serial fallback(s) exceed the budget "
            f"of {policy.fallback_budget}",
            serial_fallbacks=total_fallbacks,
        )

    if policy.expect_dedup:
        completed = sum(
            1 for session in sessions if session.get("status") == "completed"
        )
        fleet = snapshot.get("fleet", {}) or {}
        wire = fleet.get("wire", {}) or {}
        cross_hits = int(wire.get("cross_session_hits", 0))
        if completed >= policy.dedup_min_sessions and cross_hits == 0:
            report.add(
                "dedup-regression",
                f"{completed} identical sessions completed with zero "
                "cross-session cache hits — fleet blob dedup is not "
                "engaging",
                completed=completed,
            )
    return report
