"""Chrome trace-event export, schema validation, and timeline analysis.

The exported payload is the `Trace Event Format`_ ``{"traceEvents":
[...]}`` JSON that Perfetto and ``chrome://tracing`` load directly:

* one ``"M"`` (metadata) pair per track naming the process
  ("coordinator" / "worker <pid>") and pinning the sort order
  (coordinator on top, workers below in first-seen order);
* one ``"X"`` (complete) event per span, ``ts``/``dur`` in
  microseconds on the coordinator clock, with the span's annotations
  (epoch index, bytes shipped, resend counts…) under ``args``.

``ts`` and ``dur`` are derived from the *same* rounded endpoints
(``dur = round(end) - round(start)``), so the flat-span invariant —
per-track spans are monotonic and non-overlapping — survives rounding
exactly, and :func:`validate_trace` can assert it without an epsilon.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.spans import CAT_EPOCH, Tracer

#: an ``"X"`` event must carry exactly these keys (plus optional args)
_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def _us(seconds: float) -> float:
    """Microseconds, rounded to the nanosecond (Perfetto's resolution)."""
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: Tracer, counters: Optional[dict] = None) -> dict:
    """The tracer's spans as a Chrome trace-event payload (plain dict).

    ``counters`` (optional, ``{group: {key: value}}``) rides along under
    ``otherData["counters"]`` — run-scoped execution counters (fused
    superblock ops, total ops retired) that ``repro trace summarize``
    reports beside the timeline.
    """
    events: List[dict] = []
    track_order: List[int] = []
    for record in tracer.spans:
        if record.track not in track_order:
            track_order.append(record.track)
    # The coordinator track leads regardless of which span came first.
    if tracer.pid in track_order:
        track_order.remove(tracer.pid)
    track_order.insert(0, tracer.pid)
    for sort_index, pid in enumerate(track_order):
        name = "coordinator" if pid == tracer.pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    for record in tracer.spans:
        start_us = _us(record.start)
        events.append(
            {
                "name": record.name,
                "cat": record.cat,
                "ph": "X",
                "ts": start_us,
                "dur": _us(record.end) - start_us,
                "pid": record.track,
                "tid": 0,
                "args": dict(record.args),
            }
        )
    other: dict = {
        "tool": "repro",
        "coordinator_pid": tracer.pid,
    }
    if counters:
        other["counters"] = counters
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: Tracer, path: str, counters: Optional[dict] = None
) -> dict:
    """Export the tracer to ``path``; returns the payload written."""
    payload = chrome_trace(tracer, counters=counters)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return payload


def load_trace(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def validate_trace(payload) -> List[str]:
    """Schema-check a trace payload; returns a list of problems (empty = ok).

    Checks the container shape, every event's required fields, and the
    flat-span invariant: within each ``(pid, tid)`` track, ``"X"``
    events sorted by start must not overlap.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        return ["payload is not a dict with a traceEvents list"]
    tracks: Dict[tuple, List[dict]] = {}
    for position, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {position} is not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            problems.append(f"event {position} has unsupported ph {phase!r}")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {position} missing {key!r}")
        ts, dur = event.get("ts"), event.get("dur")
        if isinstance(ts, (int, float)) and ts < 0:
            problems.append(f"event {position} has negative ts {ts}")
        if isinstance(dur, (int, float)) and dur < 0:
            problems.append(f"event {position} has negative dur {dur}")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            tracks.setdefault((event.get("pid"), event.get("tid")), []).append(
                event
            )
    for (pid, tid), events in tracks.items():
        events.sort(key=lambda e: (e["ts"], e["ts"] + e["dur"]))
        previous_end = None
        previous_name = ""
        for event in events:
            if previous_end is not None and event["ts"] < previous_end:
                problems.append(
                    f"track pid={pid}: span {event['name']!r} at "
                    f"{event['ts']}us overlaps preceding "
                    f"{previous_name!r} ending at {previous_end}us"
                )
            previous_end = event["ts"] + event["dur"]
            previous_name = event["name"]
    return problems


def _merged_extent(intervals: List[tuple]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    total = 0.0
    cursor_start = cursor_end = None
    for start, end in sorted(intervals):
        if cursor_end is None or start > cursor_end:
            if cursor_end is not None:
                total += cursor_end - cursor_start
            cursor_start, cursor_end = start, end
        else:
            cursor_end = max(cursor_end, end)
    if cursor_end is not None:
        total += cursor_end - cursor_start
    return total


def summarize_trace(payload: dict, top: int = 5) -> dict:
    """Timeline analysis of a trace payload.

    ``overlap_ratio`` is the sum of all epoch-execute span durations
    divided by the length of their union on the timeline: 1.0 means the
    epochs ran strictly one after another, N means N epochs were in
    flight at once on average — the visible measure of uniparallelism.
    """
    track_names: Dict[int, str] = {}
    executes: List[dict] = []
    spans = 0
    for event in payload.get("traceEvents", ()):
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                track_names[event["pid"]] = event["args"]["name"]
            continue
        if event.get("ph") != "X":
            continue
        spans += 1
        if event.get("cat") == CAT_EPOCH:
            executes.append(event)
    intervals = [(e["ts"], e["ts"] + e["dur"]) for e in executes]
    busy = sum(e["dur"] for e in executes)
    union = _merged_extent(intervals)
    tracks: Dict[int, dict] = {}
    for event in executes:
        row = tracks.setdefault(
            event["pid"],
            {
                "name": track_names.get(event["pid"], f"pid {event['pid']}"),
                "execute_spans": 0,
                "busy_us": 0.0,
            },
        )
        row["execute_spans"] += 1
        row["busy_us"] = round(row["busy_us"] + event["dur"], 3)

    def _epoch_row(event: dict) -> dict:
        args = event.get("args") or {}
        return {
            "epoch": args.get("epoch"),
            "kind": args.get("kind", ""),
            "track": track_names.get(event["pid"], f"pid {event['pid']}"),
            "dur_us": event["dur"],
            "bytes_shipped": args.get("bytes_shipped", 0),
            "blobs_sent": args.get("blobs_sent", 0),
        }

    slowest = sorted(executes, key=lambda e: e["dur"], reverse=True)[:top]
    straggler: Optional[dict] = None
    if executes:
        last = max(executes, key=lambda e: e["ts"] + e["dur"])
        straggler = dict(
            _epoch_row(last), finish_us=round(last["ts"] + last["dur"], 3)
        )
    counters = (payload.get("otherData") or {}).get("counters") or {}
    superblocks: Optional[dict] = None
    if counters.get("superblock") or counters.get("exec", {}).get("ops_executed"):
        sb = counters.get("superblock", {})
        ops = counters.get("exec", {}).get("ops_executed", 0)
        fused_ops = sb.get("fused_ops", 0)
        superblocks = {
            "blocks_compiled": sb.get("blocks_compiled", 0),
            "fused_calls": sb.get("fused_calls", 0),
            "fused_ops": fused_ops,
            "fallback_exits": sb.get("fallback_exits", 0),
            "ops_executed": ops,
            "fused_share": round(fused_ops / ops, 3) if ops else 0.0,
        }
    durable: Optional[dict] = None
    if counters.get("durable"):
        dc = counters["durable"]
        shard_bytes = dc.get("shard_bytes", 0)
        segment_bytes = dc.get("segment_bytes", 0)
        durable = {
            "epochs": dc.get("epochs", 0),
            "shard_bytes": shard_bytes,
            "segment_bytes": segment_bytes,
            "compression": (
                round(shard_bytes / segment_bytes, 2) if segment_bytes else 0.0
            ),
            "group_commits": dc.get("group_commits", 0),
            "fsyncs": dc.get("fsyncs", 0),
            "blobs_written": dc.get("blobs_written", 0),
        }
    return {
        "spans": spans,
        "epochs": len(executes),
        "busy_us": round(busy, 3),
        "wall_us": round(union, 3),
        "overlap_ratio": round(busy / union, 3) if union else 0.0,
        "tracks": {pid: tracks[pid] for pid in sorted(tracks)},
        "top_epochs": [_epoch_row(e) for e in slowest],
        "straggler": straggler,
        "superblocks": superblocks,
        "durable": durable,
    }


def render_summary(summary: dict) -> str:
    """``repro trace summarize``'s human-readable report."""
    lines = [
        f"{summary['epochs']} epoch span(s) across {len(summary['tracks'])} "
        f"track(s), {summary['spans']} span(s) total",
        f"epoch busy time {summary['busy_us']:.0f}us over a "
        f"{summary['wall_us']:.0f}us execute window — "
        f"overlap ratio {summary['overlap_ratio']:.2f}",
    ]
    for pid in summary["tracks"]:
        row = summary["tracks"][pid]
        lines.append(
            f"  {row['name']:<16} {row['execute_spans']:>3} epoch(s), "
            f"busy {row['busy_us']:.0f}us"
        )
    if summary["top_epochs"]:
        lines.append("slowest epochs:")
        for row in summary["top_epochs"]:
            lines.append(
                f"  epoch {row['epoch']} [{row['kind']}] on {row['track']}: "
                f"{row['dur_us']:.0f}us, {row['bytes_shipped']} wire byte(s)"
            )
    if summary["straggler"]:
        row = summary["straggler"]
        lines.append(
            f"straggler: epoch {row['epoch']} on {row['track']} finished "
            f"last at {row['finish_us']:.0f}us"
        )
    superblocks = summary.get("superblocks")
    if superblocks:
        lines.append(
            f"superblocks: {superblocks['fused_ops']} of "
            f"{superblocks['ops_executed']} op(s) fused "
            f"({superblocks['fused_share']:.0%}) in "
            f"{superblocks['fused_calls']} call(s), "
            f"{superblocks['blocks_compiled']} block(s) compiled, "
            f"{superblocks['fallback_exits']} fallback exit(s)"
        )
    durable = summary.get("durable")
    if durable:
        lines.append(
            f"durable log: {durable['epochs']} epoch(s), "
            f"{durable['shard_bytes']} shard byte(s) -> "
            f"{durable['segment_bytes']} on disk "
            f"({durable['compression']:.2f}x) in "
            f"{durable['group_commits']} group commit(s), "
            f"{durable['fsyncs']} fsync(s)"
        )
    return "\n".join(lines)
