"""Live metrics exposition: the telemetry hub and its HTTP endpoints.

:class:`TelemetryHub` is the mutable, thread-safe state behind the
service's live telemetry. It is fed from two directions:

* the **event journal** (:mod:`repro.obs.events`) — the hub subscribes
  as a listener and derives per-session live state (epoch commit
  counts, inter-commit intervals, contained-fault counts) from the
  same stream an operator tails, so there is one source of truth;
* the **service** — admission and completion are reported directly
  (:meth:`session_admitted` / :meth:`session_completed`), and an
  attached :class:`~repro.service.fleet.FleetScheduler` is polled for
  live lane state (inflight, queue high water, credit waits) whenever
  a snapshot is taken. Polling at read time means zero steady-state
  cost: an unscraped hub does no aggregation work.

:class:`TelemetryServer` exposes the hub over HTTP on the service's
own asyncio loop (stdlib only, no framework):

* ``GET /metrics`` — Prometheus text exposition: fleet counters and
  gauges, admission-wait as a cumulative-bucket histogram, and
  per-session epoch/unit latency quantiles;
* ``GET /sessions`` — per-lane JSON (status, inflight, queue high
  water, backpressure, latency quantiles) plus the fleet summary —
  the payload ``repro top`` renders;
* ``GET /healthz`` — the :mod:`repro.obs.health` verdict; HTTP 200
  when ok, 503 when degraded.

Nothing here may ever influence an execution: the hub observes
transitions that already happened, and the server reads hub snapshots.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs import health as obs_health
from repro.obs.histo import LogHistogram

_QUANTILES = (0.50, 0.90, 0.99)


class _SessionView:
    """One session's accumulated telemetry (hub-internal)."""

    __slots__ = (
        "sid",
        "status",
        "admitted_t",
        "admission_wait",
        "completed_t",
        "ok",
        "epochs",
        "last_commit_t",
        "commit_intervals",
        "interval_hist",
        "faults",
        "serial_fallbacks",
        "backpressure_hits",
        "duration",
        "summary",
        "error",
    )

    def __init__(self, sid: str, now: float):
        self.sid = sid
        self.status = "running"
        self.admitted_t = now
        self.admission_wait = 0.0
        self.completed_t: Optional[float] = None
        self.ok: Optional[bool] = None
        self.epochs = 0
        self.last_commit_t: Optional[float] = None
        #: recent inter-commit gaps (the stall detector's baseline)
        self.commit_intervals: deque = deque(maxlen=32)
        self.interval_hist = LogHistogram()
        self.faults = 0
        self.serial_fallbacks = 0
        self.backpressure_hits = 0
        self.duration = 0.0
        #: the lane's final queueing/wire summary (set at completion)
        self.summary: Dict[str, object] = {}
        self.error: Optional[str] = None

    def to_plain(self) -> Dict[str, object]:
        return {
            "sid": self.sid,
            "status": self.status,
            "admission_wait": round(self.admission_wait, 6),
            "epochs": self.epochs,
            "last_commit_t": self.last_commit_t,
            "commit_intervals": [round(gap, 6) for gap in self.commit_intervals],
            "epoch_interval": {
                label: round(value, 6)
                for label, value in self.interval_hist.quantiles(_QUANTILES).items()
            },
            "faults": self.faults,
            "serial_fallbacks": self.serial_fallbacks,
            "backpressure_hits": self.backpressure_hits,
            "duration": round(self.duration, 6),
            "ok": self.ok,
            "error": self.error,
        }


class TelemetryHub:
    """Thread-safe aggregation of fleet + per-session telemetry."""

    def __init__(self, policy: Optional[obs_health.HealthPolicy] = None):
        self.policy = policy or obs_health.HealthPolicy()
        self._lock = threading.RLock()
        self._sessions: Dict[str, _SessionView] = {}
        self._fleet = None
        self.origin = time.perf_counter()
        self.admission_hist = LogHistogram()
        self.completed = 0
        self.failed = 0

    def now(self) -> float:
        return time.perf_counter() - self.origin

    # ------------------------------------------------------------------
    # Feeding (service + journal).
    # ------------------------------------------------------------------
    def attach_fleet(self, fleet) -> None:
        self._fleet = fleet

    def _view(self, sid: str) -> _SessionView:
        view = self._sessions.get(sid)
        if view is None:
            view = self._sessions[sid] = _SessionView(sid, self.now())
        return view

    def session_admitted(self, sid: str, wait: float) -> None:
        with self._lock:
            view = self._view(sid)
            view.admission_wait = wait
            self.admission_hist.observe(wait)

    def session_completed(
        self,
        sid: str,
        ok: bool,
        epochs: int,
        duration: float,
        summary: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._lock:
            view = self._view(sid)
            view.status = "completed" if ok else "failed"
            view.completed_t = self.now()
            view.ok = ok
            view.epochs = max(view.epochs, epochs)
            view.duration = duration
            view.summary = dict(summary or {})
            view.error = error
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    def ingest_event(self, event: Dict[str, object]) -> None:
        """Journal listener: derive live state from the event stream."""
        kind = event.get("kind")
        sid = event.get("sid")
        if sid is None:
            return
        with self._lock:
            view = self._view(str(sid))
            if kind == "epoch-commit":
                now = self.now()
                if view.last_commit_t is not None:
                    gap = now - view.last_commit_t
                    view.commit_intervals.append(gap)
                    view.interval_hist.observe(gap)
                view.last_commit_t = now
                view.epochs += 1
            elif kind == "fault-contained":
                view.faults += 1
            elif kind == "serial-fallback":
                view.serial_fallbacks += 1
            elif kind == "session-backpressure":
                view.backpressure_hits += 1

    # ------------------------------------------------------------------
    # Reading (endpoints, health, ``repro top``).
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        live: Dict[str, Dict[str, object]] = {}
        fleet_summary: Dict[str, object] = {}
        if self._fleet is not None:
            live = self._fleet.live_summary()
            fleet_summary = self._fleet.summary()
        with self._lock:
            sessions = []
            for sid in sorted(self._sessions):
                view = self._sessions[sid]
                plain = view.to_plain()
                lane = live.get(sid) if view.status == "running" else None
                plain["lane"] = lane if lane is not None else dict(view.summary)
                sessions.append(plain)
            return {
                "now": self.now(),
                "sessions": sessions,
                "registered": len(self._sessions),
                "running": sum(
                    1 for s in self._sessions.values() if s.status == "running"
                ),
                "completed": self.completed,
                "failed": self.failed,
                "admission_wait": {
                    label: round(value, 6)
                    for label, value in self.admission_hist.quantiles(
                        _QUANTILES
                    ).items()
                },
                "fleet": fleet_summary,
            }

    def evaluate(self) -> obs_health.HealthReport:
        return obs_health.evaluate(self.snapshot(), self.policy)

    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Render the current snapshot in Prometheus text exposition."""
        snap = self.snapshot()
        lines: List[str] = []

        def metric(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        metric("repro_up", "gauge", "telemetry endpoint liveness")
        lines.append("repro_up 1")
        metric(
            "repro_sessions_registered_total", "counter",
            "sessions ever registered with the service",
        )
        lines.append(f"repro_sessions_registered_total {snap['registered']}")
        metric(
            "repro_sessions_completed_total", "counter",
            "sessions finished successfully",
        )
        lines.append(f"repro_sessions_completed_total {snap['completed']}")
        metric(
            "repro_sessions_failed_total", "counter", "sessions that failed"
        )
        lines.append(f"repro_sessions_failed_total {snap['failed']}")
        metric("repro_sessions_running", "gauge", "sessions currently running")
        lines.append(f"repro_sessions_running {snap['running']}")

        metric(
            "repro_admission_wait_seconds", "histogram",
            "seconds sessions waited for an admission slot",
        )
        with self._lock:
            cumulative = list(self.admission_hist.cumulative_buckets())
            total = self.admission_hist.count
        for upper, count in cumulative:
            lines.append(
                f'repro_admission_wait_seconds_bucket{{le="{upper:.6g}"}} {count}'
            )
        lines.append(f'repro_admission_wait_seconds_bucket{{le="+Inf"}} {total}')
        lines.append(f"repro_admission_wait_seconds_count {total}")

        fleet = snap.get("fleet") or {}
        if fleet:
            wire = fleet.get("wire", {}) or {}
            metric("repro_fleet_units_total", "counter", "units the fleet ran")
            lines.append(f"repro_fleet_units_total {fleet.get('units', 0)}")
            metric(
                "repro_fleet_pool_rebuilds_total", "counter",
                "shared-pool rebuilds after contained faults",
            )
            lines.append(
                f"repro_fleet_pool_rebuilds_total {fleet.get('pool_rebuilds', 0)}"
            )
            metric(
                "repro_fleet_backpressure_wait_seconds_total", "counter",
                "seconds session threads blocked on lane credits",
            )
            lines.append(
                "repro_fleet_backpressure_wait_seconds_total "
                f"{fleet.get('backpressure_wait', 0.0)}"
            )
            metric(
                "repro_fleet_bytes_shipped_total", "counter",
                "blob bytes shipped to workers",
            )
            lines.append(
                f"repro_fleet_bytes_shipped_total {wire.get('bytes_shipped', 0)}"
            )
            metric(
                "repro_fleet_cross_session_hits_total", "counter",
                "dispatch blobs omitted because another session shipped them",
            )
            lines.append(
                "repro_fleet_cross_session_hits_total "
                f"{wire.get('cross_session_hits', 0)}"
            )
            metric(
                "repro_fleet_unit_latency_seconds", "summary",
                "fleet-wide unit submit-to-complete latency",
            )
            for q in ("p50", "p99"):
                value = fleet.get(f"unit_latency_{q}", 0.0)
                lines.append(
                    f'repro_fleet_unit_latency_seconds{{quantile="0.{q[1:]}"}} '
                    f"{value}"
                )

        metric(
            "repro_session_epochs_total", "counter",
            "epochs committed per session",
        )
        metric(
            "repro_session_faults_total", "counter",
            "contained worker faults attributed to the session",
        )
        metric(
            "repro_session_inflight", "gauge",
            "units the session has in flight",
        )
        metric(
            "repro_session_unit_latency_seconds", "summary",
            "per-session unit submit-to-complete latency",
        )
        metric(
            "repro_session_epoch_interval_seconds", "summary",
            "per-session wall seconds between epoch commits",
        )
        for session in snap["sessions"]:
            sid = session["sid"]
            lane = session.get("lane") or {}
            lines.append(
                f'repro_session_epochs_total{{session="{sid}"}} '
                f"{session['epochs']}"
            )
            lines.append(
                f'repro_session_faults_total{{session="{sid}"}} '
                f"{session['faults']}"
            )
            lines.append(
                f'repro_session_inflight{{session="{sid}"}} '
                f"{lane.get('inflight', 0)}"
            )
            for q_label, q_key in (("0.5", "unit_latency_p50"), ("0.99", "unit_latency_p99")):
                lines.append(
                    f'repro_session_unit_latency_seconds{{session="{sid}",'
                    f'quantile="{q_label}"}} {lane.get(q_key, 0.0)}'
                )
            interval = session.get("epoch_interval", {})
            for q_label, q_key in (("0.5", "p50"), ("0.99", "p99")):
                lines.append(
                    f'repro_session_epoch_interval_seconds{{session="{sid}",'
                    f'quantile="{q_label}"}} {interval.get(q_key, 0.0)}'
                )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The HTTP endpoint (asyncio, stdlib only).
# ----------------------------------------------------------------------
class TelemetryServer:
    """Serves ``/metrics``, ``/sessions`` and ``/healthz`` for one hub."""

    def __init__(self, hub: TelemetryHub, port: int = 0, host: str = "127.0.0.1"):
        self.hub = hub
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _route(self, path: str):
        """``(status, content_type, body)`` for one request path."""
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", self.hub.prometheus_text()
        if path == "/sessions":
            return (
                200,
                "application/json",
                json.dumps(self.hub.snapshot(), sort_keys=True) + "\n",
            )
        if path == "/healthz":
            report = self.hub.evaluate()
            status = 200 if report.ok else 503
            return (
                status,
                "application/json",
                json.dumps(report.to_plain(), sort_keys=True) + "\n",
            )
        return 404, "text/plain", "not found\n"

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5)
            parts = request_line.decode("latin-1").split()
            # Drain headers; telemetry requests carry no bodies.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5)
                if not line.strip():
                    break
            if len(parts) < 2 or parts[0] != "GET":
                status, ctype, body = 405, "text/plain", "method not allowed\n"
            else:
                status, ctype, body = self._route(parts[1].split("?", 1)[0])
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                      503: "Service Unavailable"}.get(status, "OK")
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # a hung or vanished scraper must never hurt the service
        finally:
            try:
                writer.close()
            except Exception:
                pass


def http_get(url: str, timeout: float = 5.0) -> str:
    """Fetch one telemetry URL (``repro top`` / smoke tooling)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return response.read().decode()
