"""Run-wide mergeable metrics: one snapshot per record/replay.

Two pieces:

* A **process-global** :class:`~repro.sim.stats.StatsRegistry`
  (:func:`process_stats`) that execution code increments with dotted
  names (``"exec.epochs"``, ``"replay.verify_failures"``…). Counters
  are cheap dict increments and only rare events are instrumented, so
  the always-on cost is negligible (gated by
  ``benchmarks/bench_obs_overhead.py``).
* :class:`RunMetrics` — a hierarchical ``group → counter → number``
  snapshot assembled at the end of a run from (a) the coordinator's
  counter *delta* over the run, (b) counters drained out of worker
  processes, and (c) the host executor's wire/fault accounting.
  Exposed on ``RecordResult.metrics`` / ``ReplayResult.metrics``.

**The worker round-trip.** Counters incremented inside worker processes
used to be silently lost — each spawn-fresh worker had its own registry
and nobody ever read it. Now the worker task clears the process
registry when a unit starts and drains it (snapshot + clear) into
``UnitTiming.metrics`` when the unit finishes; the coordinator folds
harvested metrics into its own registry as results merge. Clearing at
task start means an aborted previous task can never leak partial
counters into the next unit, and dropped results (cancelled divergence
tails, crashed attempts) drop their counters with them — which is
exactly what keeps ``jobs=1`` and ``jobs=N`` metrics identical.
"""

from __future__ import annotations

import threading
from typing import Collection, Dict, Mapping, Optional

from repro.sim.stats import StatsRegistry

#: this process's execution counters (coordinator or worker)
_process = StatsRegistry()

#: per-thread registry override (see :func:`activate_session_registry`):
#: the service layer runs many sessions as threads of one coordinator
#: process, and their counters must not merge into each other's runs.
#: Single-threaded paths — including every worker process — never set
#: an override, so the process-global fast path is unchanged.
_scoped = threading.local()


def process_stats() -> StatsRegistry:
    """The calling thread's counter registry (scoped, else process-global)."""
    return getattr(_scoped, "registry", None) or _process


def activate_session_registry(
    registry: Optional[StatsRegistry] = None,
) -> StatsRegistry:
    """Route this thread's counters into a private registry.

    The service layer calls this at session-thread start; everything the
    session's record/replay increments — and every worker counter its
    merged unit results fold home — lands in the session's own registry,
    so ``RecordResult.metrics`` is identical to the same run performed
    solo in a fresh process. Pass an existing registry to resume one.
    """
    if registry is None:
        registry = StatsRegistry()
    _scoped.registry = registry
    return registry


def deactivate_session_registry() -> None:
    """Restore this thread to the process-global registry."""
    _scoped.registry = None


def drain_process() -> Dict[str, int]:
    """Snapshot and clear the active registry (worker task boundary)."""
    stats = process_stats()
    snap = stats.snapshot()
    stats.clear()
    return snap


def delta_since(baseline: Mapping[str, int]) -> Dict[str, int]:
    """Counters accumulated on this thread since ``baseline`` was taken."""
    now = process_stats().snapshot()
    delta = {}
    for name, value in now.items():
        diff = value - baseline.get(name, 0)
        if diff:
            delta[name] = diff
    return delta


class RunMetrics:
    """A hierarchical, mergeable ``group → counter → number`` snapshot."""

    def __init__(self) -> None:
        self._groups: Dict[str, StatsRegistry] = {}

    def group(self, name: str) -> StatsRegistry:
        """The named group's registry (created on first use)."""
        registry = self._groups.get(name)
        if registry is None:
            registry = self._groups[name] = StatsRegistry()
        return registry

    def add(self, group: str, name: str, amount=1) -> None:
        self.group(group).add(name, amount)

    def get(self, group: str, name: str, default=0):
        registry = self._groups.get(group)
        if registry is None or name not in registry:
            return default
        return registry.get(name)

    def merge_group(
        self,
        group: str,
        mapping: Optional[Mapping],
        ignore: Collection[str] = (),
    ) -> None:
        """Fold a mapping's *numeric scalars* into ``group``.

        Non-numeric values used to vanish without a trace, which made
        schema drift in worker payloads invisible. Now every unexpected
        drop is counted under ``obs.metrics_dropped``; callers that
        *know* a mapping carries structural detail (per-unit lists,
        nested wire/fault dicts) name those keys in ``ignore`` so the
        counter stays a pure drift signal.
        """
        if not mapping:
            return
        registry = self.group(group)
        for name, value in mapping.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                registry.add(name, value)
            elif name not in ignore:
                self.group("obs").add("metrics_dropped", 1)

    def merge(self, other: "RunMetrics") -> None:
        for group, registry in other._groups.items():
            self.group(group).merge(registry)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Plain nested dicts, sorted — for reports and assertions."""
        return {
            group: dict(self._groups[group].items())
            for group in sorted(self._groups)
        }

    def flat(self) -> Dict[str, int]:
        """``{"group.counter": value}`` — for tables and quick diffing."""
        return {
            f"{group}.{name}": value
            for group, counters in self.snapshot().items()
            for name, value in counters.items()
        }

    def histogram(self, name: str):
        """Rebuild the named :class:`~repro.obs.histo.LogHistogram`.

        Histograms ride the counter round-trip encoded as
        ``histo.<name>.b<index>`` (see :mod:`repro.obs.histo`), landing
        here as the ``histo`` group; this reconstructs one by name.
        Always returns a histogram — empty when nothing was observed.
        """
        from repro.obs.histo import GROUP, LogHistogram

        registry = self._groups.get(GROUP)
        counters = dict(registry.items()) if registry is not None else {}
        return LogHistogram.from_counters(name, counters)

    def histogram_names(self):
        """Names of every histogram present in this snapshot."""
        from repro.obs.histo import GROUP, histogram_names

        registry = self._groups.get(GROUP)
        if registry is None:
            return ()
        return histogram_names(dict(registry.items()))

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Mapping]) -> "RunMetrics":
        metrics = cls()
        for group, counters in snapshot.items():
            metrics.merge_group(group, counters)
        return metrics

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{group}={dict(reg.items())}" for group, reg in sorted(self._groups.items())
        )
        return f"RunMetrics({inner})"


#: ``timing_summary()`` keys that are structural by design (per-unit
#: lists, nested accounting dicts) — not schema drift, so not counted
#: as drops when the host mapping folds into metrics.
_HOST_STRUCTURAL_KEYS = frozenset(
    {"unit_wall", "unit_cpu", "unit_pids", "fault_events", "speculation",
     "wire", "faults"}
)


def build_run_metrics(
    counter_delta: Mapping[str, int],
    host: Optional[Mapping] = None,
    **groups: Mapping,
) -> RunMetrics:
    """Assemble one run's :class:`RunMetrics` snapshot.

    ``counter_delta`` is the dotted-name process delta (split into
    groups on the first ``.``); ``host`` is the executor's
    ``timing_summary()`` (its numeric scalars plus the nested ``wire``
    and ``faults`` dicts); extra keyword groups merge verbatim (the
    recorder passes its recording stats as ``record=...``).
    """
    metrics = RunMetrics()
    for name, value in counter_delta.items():
        group, _, key = name.partition(".")
        if key:
            metrics.add(group, key, value)
        else:
            metrics.add("misc", group, value)
    if host:
        metrics.merge_group("host", host, ignore=_HOST_STRUCTURAL_KEYS)
        metrics.merge_group("wire", host.get("wire"), ignore=("unit_bytes",))
        metrics.merge_group("faults", host.get("faults"))
    for group, mapping in groups.items():
        metrics.merge_group(group, mapping)
    return metrics
