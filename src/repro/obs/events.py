"""The structured event journal: every load-bearing transition, bounded.

Counters say *how many*; the journal says *what happened, in order*.
Every state transition an operator would grep a log for is emitted as
one structured event — epoch committed, divergence discarded, fault
contained/retried/serial-fallback, ``NeedBlobs`` resend, flight-window
slide and GC, session admitted/backpressured/completed — into a
process-wide :class:`EventJournal`:

* **Bounded ring.** Events land in a ``deque(maxlen=capacity)``; the
  journal never grows with run length. Overflow is counted
  (``dropped``), and sequence numbers are global and monotonic, so a
  reader can tell exactly how many events a full ring lost.
* **Optional JSON-lines sink.** Given a path, every event is also
  appended as one JSON object per line — the durable form ``repro
  events tail`` reads and the CI smoke greps.
* **Listeners.** The live telemetry hub (:mod:`repro.obs.expo`)
  subscribes to the journal and derives per-session health state
  (last-commit times, fault counts) from the same stream, so there is
  exactly one source of truth for "what happened".

**Disabled means free.** The journal is ``None`` by default; every
:func:`emit` site costs one module-global check, the same contract the
span tracer honors (gated by ``benchmarks/bench_obs_overhead.py``).
The service layer installs a journal for the duration of a serve run;
the CLI installs one when ``--events PATH`` (or ``REPRO_EVENTS``) asks
for a durable sink. Worker processes never install a journal — every
emission site lives on the coordinator, where transitions are decided.

Sessions run as threads of one coordinator process, so events carry the
emitting thread's session label (:func:`set_event_context`): one
journal, per-tenant attribution.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

#: event kinds emitted by the core layers (one place to see the taxonomy)
KINDS = (
    "epoch-commit",        # recorder: one epoch folded into the recording
    "divergence",          # recorder: epoch result rejected, log pruned
    "recovery",            # recorder: forward recovery re-execution done
    "fault-contained",     # host: worker crash/timeout/task-error observed
    "fault-retry",         # host: blamed unit retried on a fresh pool
    "serial-fallback",     # host: unit re-run serially on the coordinator
    "blob-resend",         # host: NeedBlobs answered with the full set
    "flight-window-slide", # durable log: manifest window slid forward
    "segment-gc",          # durable log: dead sealed segment deleted
    "pack-compaction",     # durable log: blob pack rewritten survivors-only
    "partial-close",       # durable log: crash path sealed committed prefix
    "session-admitted",    # service: tenant got an admission slot
    "session-backpressure",# service: tenant blocked on its lane credits
    "session-completed",   # service: tenant finished (ok or failed)
)


class EventJournal:
    """A bounded, thread-safe ring of structured events."""

    def __init__(self, capacity: int = 1024, sink_path: Optional[str] = None):
        self.capacity = max(1, int(capacity))
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._listeners: List[Callable[[Dict[str, object]], None]] = []
        self.sink_path = sink_path
        self._sink = open(sink_path, "a", buffering=1) if sink_path else None
        #: events pushed out of a full ring (still in the sink, if any)
        self.dropped = 0
        self.emitted = 0
        #: monotonic clock origin: event ``t`` is seconds since install
        self.origin = time.perf_counter()

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> Dict[str, object]:
        event: Dict[str, object] = {
            "seq": next(self._seq),
            "t": round(time.perf_counter() - self.origin, 6),
            "kind": kind,
        }
        sid = _context_sid()
        if sid is not None:
            event["sid"] = sid
        event.update(fields)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.emitted += 1
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(event, sort_keys=True) + "\n")
                except (OSError, TypeError):
                    pass  # telemetry must never fail the run
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                pass  # a broken consumer must never fail the producer
        return event

    def add_listener(self, listener: Callable[[Dict[str, object]], None]) -> None:
        with self._lock:
            self._listeners.append(listener)

    def tail(self, count: Optional[int] = None) -> List[Dict[str, object]]:
        """The newest ``count`` events, oldest first (all when ``None``)."""
        with self._lock:
            events = list(self._ring)
        if count is not None:
            events = events[-count:]
        return events

    def close(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            finally:
                self._sink = None


# ----------------------------------------------------------------------
# Process-wide installation + per-thread session context.
# ----------------------------------------------------------------------
_journal: Optional[EventJournal] = None
_context = threading.local()


def _context_sid() -> Optional[str]:
    return getattr(_context, "sid", None)


def set_event_context(sid: Optional[str]) -> None:
    """Stamp this thread's future events with a session id (None clears)."""
    _context.sid = sid


def journal() -> Optional[EventJournal]:
    """The installed journal, or None (the disabled fast path)."""
    return _journal


def install_journal(
    capacity: int = 1024, sink_path: Optional[str] = None
) -> EventJournal:
    """Install (and return) a fresh process-wide journal."""
    global _journal
    if _journal is not None:
        _journal.close()
    _journal = EventJournal(capacity=capacity, sink_path=sink_path)
    return _journal


def uninstall_journal() -> Optional[EventJournal]:
    """Detach and return the journal (closing its sink)."""
    global _journal
    detached, _journal = _journal, None
    if detached is not None:
        detached.close()
    return detached


def emit(kind: str, **fields) -> None:
    """Emit one event if a journal is installed (free when not)."""
    active = _journal
    if active is None:
        return
    active.emit(kind, **fields)


# ----------------------------------------------------------------------
# Reading (``repro events tail``).
# ----------------------------------------------------------------------
def read_events(path: str, count: Optional[int] = None) -> List[Dict[str, object]]:
    """Read the last ``count`` events from a JSON-lines sink.

    ``path`` may be the sink file itself or a directory holding an
    ``events.jsonl`` (the service's default layout).
    """
    import os

    if os.path.isdir(path):
        path = os.path.join(path, "events.jsonl")
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn tail line from a crashed writer
    if count is not None:
        events = events[-count:]
    return events


def format_event(event: Dict[str, object]) -> str:
    """One human line per event (``repro events tail`` output)."""
    seq = event.get("seq", "?")
    t = event.get("t", 0.0)
    kind = event.get("kind", "?")
    sid = event.get("sid")
    rest = {
        key: value
        for key, value in event.items()
        if key not in ("seq", "t", "kind", "sid")
    }
    detail = " ".join(f"{key}={value}" for key, value in sorted(rest.items()))
    label = f" [{sid}]" if sid else ""
    return f"{seq:>6}  {t:>10.6f}  {kind:<20}{label} {detail}".rstrip()
