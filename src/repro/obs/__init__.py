"""Unified observability: epoch-span tracing, run metrics, timeline export.

DoublePlay's value proposition is a *timeline* claim — epochs recorded
in parallel, offset in time, stitched back into one sequential
execution — and this package is how we see it:

* :mod:`repro.obs.spans` — a near-zero-overhead span tracer. Disabled
  (the default) it is a module-level ``None`` check on every
  instrumentation site; enabled (``--trace PATH`` / ``REPRO_TRACE``) it
  records epoch-lifecycle spans on the coordinator and, piggybacked on
  the ``UnitTiming`` result path, inside worker processes, re-basing
  worker timestamps onto the coordinator clock.
* :mod:`repro.obs.metrics` — a hierarchical, mergeable run-wide counter
  registry. Workers drain their process-local counters into unit
  results; the coordinator merges them with its own and with the host
  executor's wire/fault accounting into one :class:`RunMetrics`
  snapshot exposed on ``RecordResult.metrics`` / ``ReplayResult.metrics``.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``; one track per worker pid plus a
  coordinator track) plus schema validation and the ``repro trace
  summarize`` analysis (overlap ratio, top-N slowest epochs, straggler
  attribution).
* :mod:`repro.obs.histo` — mergeable log-bucketed latency/size
  histograms, encoded as dotted counters so they ride the worker
  round-trip unchanged (p50/p90/p99 via ``RunMetrics.histogram``).
* :mod:`repro.obs.events` — a bounded structured event journal (ring +
  optional JSON-lines sink) emitted at every load-bearing transition;
  ``repro events tail`` reads it.
* :mod:`repro.obs.expo` — the live telemetry hub and its HTTP
  endpoints (``/metrics`` Prometheus text, ``/sessions`` JSON,
  ``/healthz``) behind ``repro serve --telemetry-port``.
* :mod:`repro.obs.health` — pure SLO evaluation (stalled lanes,
  admission-wait breach, fault/fallback budgets, dedup regression)
  driving ``/healthz`` and the service ``--verify`` exit.
* :mod:`repro.obs.summary` — the table-driven CLI summary renderer
  over :class:`RunMetrics` groups and histograms.

Nothing here may ever influence an execution: recordings and replay
verdicts are bit-identical with telemetry on or off, at any jobs count.
"""

from repro.obs.export import (
    chrome_trace,
    load_trace,
    summarize_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.health import HealthPolicy, HealthReport
from repro.obs.health import evaluate as evaluate_health
from repro.obs.histo import LogHistogram
from repro.obs.metrics import RunMetrics, build_run_metrics, process_stats
from repro.obs.spans import (
    SpanRecord,
    Tracer,
    current,
    enabled,
    span,
    start_trace,
    stop_trace,
)

__all__ = [
    "HealthPolicy",
    "HealthReport",
    "LogHistogram",
    "RunMetrics",
    "SpanRecord",
    "Tracer",
    "build_run_metrics",
    "chrome_trace",
    "current",
    "enabled",
    "evaluate_health",
    "load_trace",
    "process_stats",
    "span",
    "start_trace",
    "stop_trace",
    "summarize_trace",
    "validate_trace",
    "write_chrome_trace",
]
