"""Epoch-lifecycle span tracing across the coordinator and its workers.

Design constraints, in order:

1. **Disabled means free.** Tracing is off by default and every
   instrumentation site costs one module-global ``is None`` check (the
   :func:`span` context manager short-circuits on it; hot per-op code
   is never instrumented at all — spans exist only at epoch/dispatch
   granularity). The benchmark gate in
   ``benchmarks/bench_obs_overhead.py`` holds the disabled-mode cost
   under 3%.
2. **One clock.** ``time.perf_counter()`` is the system-wide monotonic
   clock on every platform we support, so worker processes ship *raw*
   timestamps and the coordinator re-bases them by subtracting its own
   trace origin (:meth:`Tracer.rebase`). No cross-process handshake,
   no skew model — spans from every process land on one timeline.
3. **Flat spans.** Spans never nest within a track: the taxonomy is
   chosen so that per-track intervals are naturally disjoint (a worker
   decodes, then executes; the coordinator dispatches, then commits),
   which is what makes the exported timeline legible and lets the
   schema test assert per-track monotonicity.

Span taxonomy (``cat`` → names):

* ``segment`` — ``tp-epoch``: one epoch's slice of the thread-parallel
  run on the coordinator (live kernel, checkpoints, hint capture),
  emitted boundary-to-boundary so the timeline shows which epoch the
  TP run was producing while the commit pipeline worked behind it.
* ``wire`` — ``dispatch`` (build + submit one unit, coordinator;
  ``args["speculative"]`` marks mid-segment pipeline dispatches),
  ``blob-resend`` (full re-dispatch after a worker's ``NeedBlobs``),
  ``wire-decode`` (absorb the dispatch into the worker's blob cache
  and hydrate the checkpoints, worker side).
* ``epoch`` — ``execute``: one epoch's uniprocessor execution. Worker
  side for pool units, coordinator side for the serial path and the
  serial fallback (``args["kind"]`` distinguishes record / replay /
  ``*-serial``). The coordinator annotates harvested execute spans
  with the unit's wire cost (``bytes_shipped`` / ``blobs_sent``).
* ``commit`` — ``commit``: folding one epoch's result into the
  recording on the coordinator.
* ``recovery`` — ``divergence`` (log pruning after a failed epoch)
  and ``recovery`` (the live forward-recovery re-execution).

Worker spans travel home as plain tuples
``(name, cat, raw_start, raw_end, args)`` on
``repro.host.wire.UnitTiming.spans`` — picklable, tiny, and absent
(``()``) when tracing is off.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: span categories (the ``cat`` field; see the module docstring)
CAT_SEGMENT = "segment"
CAT_WIRE = "wire"
CAT_EPOCH = "epoch"
CAT_COMMIT = "commit"
CAT_RECOVERY = "recovery"


@dataclass
class SpanRecord:
    """One completed span on the coordinator timeline.

    ``start``/``end`` are seconds since the trace origin (coordinator
    clock); ``track`` is the host pid that did the work.
    """

    name: str
    cat: str
    start: float
    end: float
    track: int
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Coordinator-side span collector for one traced run."""

    def __init__(self, path: Optional[str] = None):
        #: where the CLI writes the Chrome trace when the run ends
        self.path = path
        self.pid = os.getpid()
        #: raw ``perf_counter`` instant all span times are relative to
        self.origin = time.perf_counter()
        self.spans: List[SpanRecord] = []

    def now(self) -> float:
        """Seconds since the trace origin."""
        return time.perf_counter() - self.origin

    def add(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        track: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                start=start,
                end=max(end, start),
                track=track or self.pid,
                args=args or {},
            )
        )

    def rebase(self, raw: float) -> float:
        """Re-base a worker's raw ``perf_counter`` stamp onto this trace.

        ``perf_counter`` is system-wide monotonic, so re-basing is one
        subtraction; the clamp guards against a pathological platform
        clock (a span can never precede the trace it belongs to).
        """
        return max(0.0, raw - self.origin)

    def ingest(
        self,
        raw_spans: Sequence[tuple],
        track: int,
        annotate: Optional[Dict[str, object]] = None,
    ) -> None:
        """Fold a worker's raw-clock spans into the coordinator timeline.

        ``annotate`` is merged into the args of the worker's ``epoch``
        spans — the coordinator is the side that knows the unit's wire
        cost, the worker the side that knows its execution interval.
        """
        for name, cat, raw_start, raw_end, args in raw_spans:
            merged = dict(args)
            if annotate and cat == CAT_EPOCH:
                merged.update(annotate)
            self.add(
                name,
                cat,
                self.rebase(raw_start),
                self.rebase(raw_end),
                track=track,
                args=merged,
            )


class WorkerSpanLog:
    """Raw-clock span collection inside a worker process.

    Created per task only when the dispatch asked for tracing; spans are
    plain tuples ``(name, cat, raw_start, raw_end, args)`` ready to ride
    home on ``UnitTiming.spans``.
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[tuple] = []

    def add(self, name: str, cat: str, raw_start: float, raw_end: float,
            **args) -> None:
        self.spans.append((name, cat, raw_start, raw_end, args))

    def export(self) -> Tuple[tuple, ...]:
        return tuple(self.spans)


#: the active tracer, or None — the disabled fast path is this check
_tracer: Optional[Tracer] = None

#: per-thread tracer override (service sessions). The sentinel
#: distinguishes "no override installed" (fall through to the module
#: global) from "explicitly no tracer" (a session that is not tracing
#: must not leak spans into a trace the main thread happens to have
#: active).
_SCOPE_UNSET = object()
_scoped = threading.local()


def _active() -> Optional[Tracer]:
    tracer = getattr(_scoped, "tracer", _SCOPE_UNSET)
    if tracer is not _SCOPE_UNSET:
        return tracer
    return _tracer


def enabled() -> bool:
    """Is a trace being collected on this thread?"""
    return _active() is not None


def current() -> Optional[Tracer]:
    """The active tracer (None when tracing is disabled)."""
    return _active()


def start_trace(path: Optional[str] = None) -> Tracer:
    """Begin collecting spans; returns the (now-active) tracer."""
    global _tracer
    _tracer = Tracer(path)
    return _tracer


def stop_trace() -> Optional[Tracer]:
    """Detach and return the active tracer (export is the caller's job)."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def set_session_tracer(tracer: Optional[Tracer]) -> None:
    """Install a per-thread tracer override (service session isolation).

    ``None`` is an explicit override too: the session collects no spans
    even while another thread's global trace is running. Use
    :func:`clear_session_tracer` to remove the override entirely.
    """
    _scoped.tracer = tracer


def clear_session_tracer() -> None:
    """Drop this thread's tracer override (back to the module global)."""
    try:
        del _scoped.tracer
    except AttributeError:
        pass


@contextlib.contextmanager
def span(name: str, cat: str, **args):
    """Record one coordinator span around a block (no-op when disabled)."""
    tracer = _active()
    if tracer is None:
        yield
        return
    start = tracer.now()
    try:
        yield
    finally:
        tracer.add(name, cat, start, tracer.now(), args=args)
