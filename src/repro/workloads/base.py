"""Workload abstraction and registry.

A :class:`Workload` builds a :class:`WorkloadInstance` for a given worker
count / scale / seed: an assembled program image, the kernel setup (file
contents, network arrivals, RAND seed) and a validator that checks the
finished kernel's externally visible results against values the workload
computed in Python. Validators accept any *legal* outcome (e.g. a
work-queue's output in any order), so they pass for every correct schedule
while still catching real corruption.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Type

from repro.isa.assembler import Assembler
from repro.isa.program import ProgramImage
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.sim.rng import DeterministicRng


@dataclass
class WorkloadInstance:
    """One buildable, runnable, checkable workload configuration."""

    name: str
    image: ProgramImage
    setup: KernelSetup
    workers: int
    racy: bool
    #: checks a finished kernel's output/files/responses
    validate: Callable[[Kernel], bool]
    #: descriptive values for reports (input words, expected results...)
    expected: Dict[str, int] = field(default_factory=dict)


class Workload(abc.ABC):
    """A parameterisable benchmark program."""

    #: registry key, e.g. "pbzip"
    name: str = ""
    #: paper-style grouping: "client", "server", "scientific", "micro"
    category: str = "client"
    #: does the program contain intentional data races?
    racy: bool = False

    @abc.abstractmethod
    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        """Assemble the program and its inputs."""

    def rng(self, seed: int) -> DeterministicRng:
        return DeterministicRng(seed, f"workload/{self.name}")


#: registry: name → workload class
WORKLOADS: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError(f"workload class {cls.__name__} needs a name")
    if cls.name in WORKLOADS:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    WORKLOADS[cls.name] = cls
    return cls


def build_workload(
    name: str, workers: int = 2, scale: int = 1, seed: int = 0
) -> WorkloadInstance:
    """Build a registered workload by name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return cls().build(workers=workers, scale=scale, seed=seed)


def workload_names(category: str = "") -> List[str]:
    """Registered workload names, optionally filtered by category."""
    names = [
        name
        for name, cls in WORKLOADS.items()
        if not category or cls.category == category
    ]
    return sorted(names)


def fork_join_main(
    asm: Assembler,
    workers: int,
    prologue: Callable[[Assembler], None] = None,
    epilogue: Callable[[Assembler], None] = None,
) -> None:
    """Emit the standard main: prologue, spawn W workers (r0 = worker
    index), join them, epilogue, exit. Uses registers r20..r20+W-1."""
    if workers > 8:
        raise ValueError(f"fork_join_main supports at most 8 workers, got {workers}")
    with asm.function("main"):
        if prologue is not None:
            prologue(asm)
        for index in range(workers):
            asm.li("r1", index)
            asm.spawn(f"r{20 + index}", "worker", args=["r1"])
        for index in range(workers):
            asm.join(f"r{20 + index}")
        if epilogue is not None:
            epilogue(asm)
        asm.exit_()
