"""pbzip2-like parallel compression.

Structure matched to the real tool: worker threads pull fixed-size blocks
from a shared input descriptor under a mutex (block id assigned with the
read, so the id ↔ data pairing is deterministic), "compress" each block
privately (a checksum fold plus a compute burst), and append
``(block id, checksum)`` records to the output file under an output mutex.
Output order is schedule-dependent; the *set* of records is not, which is
exactly what the validator checks.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

INPUT_FILE = 0
OUTPUT_FILE = 1


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class PbzipWorkload(Workload):
    """Pipeline-parallel block compression."""

    name = "pbzip"
    category = "client"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        blocks = 6 * scale + 2 * workers
        block_words = 24
        compress_cost = 160
        data = [rng.randint(1, 1 << 30) for _ in range(blocks * block_words)]

        asm = Assembler(name="pbzip")
        asm.word("infd", 0)
        asm.word("outfd", 0)
        asm.word("inlock", 0)
        asm.word("outlock", 0)
        asm.word("nextblk", 0)

        with asm.function("worker"):
            asm.li("r2", block_words)
            asm.syscall("r10", SyscallKind.ALLOC, args=["r2"])  # block buffer
            asm.li("r2", 2)
            asm.syscall("r16", SyscallKind.ALLOC, args=["r2"])  # record buffer
            asm.label("loop")
            asm.li("r3", "inlock")
            asm.lock("r3")
            asm.loadg("r4", "infd")
            asm.li("r6", block_words)
            asm.syscall("r5", SyscallKind.READ, args=["r4", "r10", "r6"])
            asm.loadg("r7", "nextblk")
            asm.addi("r8", "r7", 1)
            asm.storeg("r8", "nextblk")
            asm.unlock("r3")
            asm.beqi("r5", 0, "done")
            # checksum fold over the words read
            asm.li("r9", 0)
            asm.li("r11", 0)
            asm.label("csloop")
            asm.add("r12", "r10", "r11")
            asm.load("r13", "r12", 0)
            asm.muli("r14", "r9", 31)
            asm.add("r9", "r14", "r13")
            asm.addi("r11", "r11", 1)
            asm.blt("r11", "r5", "csloop")
            asm.work(compress_cost)
            # append (block id, checksum) under the output lock
            asm.store("r7", "r16", 0)
            asm.store("r9", "r16", 1)
            asm.li("r17", "outlock")
            asm.lock("r17")
            asm.loadg("r18", "outfd")
            asm.li("r19", 2)
            asm.syscall("r2", SyscallKind.WRITE, args=["r18", "r16", "r19"])
            asm.unlock("r17")
            asm.jmp("loop")
            asm.label("done")
            asm.exit_()

        def prologue(a: Assembler) -> None:
            a.li("r2", INPUT_FILE)
            a.syscall("r3", SyscallKind.OPEN, args=["r2"])
            a.storeg("r3", "infd")
            a.li("r4", OUTPUT_FILE)
            a.syscall("r5", SyscallKind.OPEN, args=["r4"])
            a.storeg("r5", "outfd")

        def epilogue(a: Assembler) -> None:
            a.loadg("r2", "nextblk")
            a.syscall("r3", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, prologue=prologue, epilogue=epilogue)
        image = asm.assemble()

        expected_records = {
            (index, _checksum(data[index * block_words : (index + 1) * block_words]))
            for index in range(blocks)
        }

        def validate(kernel: Kernel) -> bool:
            out = kernel.fs.file_contents(OUTPUT_FILE)
            if len(out) != 2 * blocks:
                return False
            records = {(out[i], out[i + 1]) for i in range(0, len(out), 2)}
            # block counter overshoots by the number of workers that saw EOF
            return records == expected_records and kernel.output == [
                blocks + workers
            ]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(files={INPUT_FILE: data, OUTPUT_FILE: []}),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"blocks": blocks, "input_words": len(data)},
        )
