"""Apache-like multi-threaded request server.

A pool of worker threads shares one listening socket behind an accept
mutex (Apache's worker MPM accept serialisation). Each worker claims a
request slot, accepts a connection — *blocking* until a request arrives,
which exercises kernel waiters crossing epoch boundaries — receives the
request, computes the response, and sends it back. Arrival times come
from a seeded schedule; which worker serves which request is scheduling
nondeterminism, so every response is validated against its own request.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.net import Arrival
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


def _response(payload) -> int:
    reqid, a, b = payload
    return a * b + reqid


@register_workload
class ApacheWorkload(Workload):
    """Accept-loop web server with a worker pool."""

    name = "apache"
    category = "server"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        requests = 8 * scale + 2 * workers
        service_cost = 180
        arrivals = []
        when = 0
        for reqid in range(requests):
            when += rng.randint(20, 400)
            arrivals.append(
                Arrival(
                    time=when,
                    payload=(reqid, rng.randint(2, 99), rng.randint(2, 99)),
                )
            )

        asm = Assembler(name="apache")
        asm.word("sock", 0)
        asm.word("acceptlock", 0)
        asm.word("served", 0)

        with asm.function("worker"):
            asm.li("r2", 3)
            asm.syscall("r10", SyscallKind.ALLOC, args=["r2"])
            asm.label("loop")
            asm.li("r3", "acceptlock")
            asm.lock("r3")
            asm.loadg("r4", "served")
            asm.bgei("r4", requests, "drain")
            asm.addi("r5", "r4", 1)
            asm.storeg("r5", "served")
            asm.loadg("r6", "sock")
            asm.syscall("r7", SyscallKind.ACCEPT, args=["r6"])
            asm.unlock("r3")
            asm.li("r8", 3)
            asm.syscall("r9", SyscallKind.RECV, args=["r7", "r10", "r8"])
            asm.work(service_cost)
            asm.load("r11", "r10", 0)   # reqid
            asm.load("r12", "r10", 1)   # a
            asm.load("r13", "r10", 2)   # b
            asm.mul("r14", "r12", "r13")
            asm.add("r14", "r14", "r11")
            asm.store("r14", "r10", 0)
            asm.li("r15", 1)
            asm.syscall("r16", SyscallKind.SEND, args=["r7", "r10", "r15"])
            asm.jmp("loop")
            asm.label("drain")
            asm.unlock("r3")
            asm.exit_()

        def prologue(a: Assembler) -> None:
            a.syscall("r2", SyscallKind.LISTEN, args=[])
            a.storeg("r2", "sock")

        def epilogue(a: Assembler) -> None:
            a.loadg("r2", "served")
            a.syscall("r3", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, prologue=prologue, epilogue=epilogue)
        image = asm.assemble()

        def validate(kernel: Kernel) -> bool:
            conversations = kernel.net.all_conversations()
            if len(conversations) != requests:
                return False
            for payload, responses in conversations.values():
                if responses != [_response(payload)]:
                    return False
            return kernel.output == [requests]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(arrivals=arrivals, rand_seed=seed),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"requests": requests},
        )
