"""aget-like segmented download.

The real tool fetches byte ranges of one URL concurrently and assembles
them in place. Here each worker round-robins over "segments" (modelled as
per-segment input files, our stand-in for HTTP range requests), copies
each into its slice of a shared output buffer (disjoint ranges — no
locking needed, like aget's pwrite), with per-segment jitter drawn from
the kernel's RAND stream (logged nondeterministic input). The assembled
buffer is checksummed and written out by main.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

SEGMENT_FILE_BASE = 10
OUTPUT_FILE = 2


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class AgetWorkload(Workload):
    """Parallel segmented fetch + reassembly."""

    name = "aget"
    category = "client"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        segments = 4 * scale + workers
        seg_words = 24
        segments_data = [
            [rng.randint(1, 1 << 30) for _ in range(seg_words)]
            for _ in range(segments)
        ]
        total_words = segments * seg_words

        asm = Assembler(name="aget")
        asm.page_aligned_array("outbuf", total_words)

        with asm.function("worker"):
            # r0 = worker index; handle segments r0, r0+W, r0+2W, ...
            asm.mov("r2", "r0")
            asm.label("segloop")
            asm.blti("r2", segments, "fetch")
            asm.exit_()
            asm.label("fetch")
            asm.addi("r3", "r2", SEGMENT_FILE_BASE)
            asm.syscall("r4", SyscallKind.OPEN, args=["r3"])
            asm.li("r5", "outbuf")
            asm.muli("r6", "r2", seg_words)
            asm.add("r5", "r5", "r6")          # destination slice
            asm.li("r7", seg_words)
            asm.syscall("r8", SyscallKind.READ, args=["r4", "r5", "r7"])
            asm.syscall("r9", SyscallKind.CLOSE, args=["r4"])
            # jitter: model variable link speed with a logged random draw
            asm.syscall("r10", SyscallKind.RAND, args=[])
            asm.li("r11", 127)
            asm.and_("r10", "r10", "r11")
            asm.addi("r10", "r10", 30)
            asm.workr("r10")
            asm.addi("r2", "r2", workers)
            asm.jmp("segloop")

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)   # checksum
            a.li("r3", 0)   # index
            a.label("cks")
            a.li("r4", "outbuf")
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.addi("r3", "r3", 1)
            a.blti("r3", total_words, "cks")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])
            a.li("r8", OUTPUT_FILE)
            a.syscall("r9", SyscallKind.OPEN, args=["r8"])
            a.li("r10", "outbuf")
            a.li("r11", total_words)
            a.syscall("r12", SyscallKind.WRITE, args=["r9", "r10", "r11"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        flattened = [word for segment in segments_data for word in segment]
        expected_checksum = _checksum(flattened)
        files = {OUTPUT_FILE: []}
        for index, segment in enumerate(segments_data):
            files[SEGMENT_FILE_BASE + index] = list(segment)

        def validate(kernel: Kernel) -> bool:
            return (
                kernel.output == [expected_checksum]
                and kernel.fs.file_contents(OUTPUT_FILE) == flattened
            )

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(files=files, rand_seed=seed),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"segments": segments, "total_words": total_words},
        )
