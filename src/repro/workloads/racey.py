"""Racy microbenchmarks.

These exist to exercise DoublePlay's divergence detection and forward
recovery: their data races make the epoch-parallel re-execution resolve
conflicting accesses differently than the thread-parallel run, so epochs
mismatch and recovery must commit the uniprocessor result. Validators
accept any outcome a sequentially consistent execution could produce —
the recording guarantee is "replay reproduces *the recorded* execution",
not any particular race resolution.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


@register_workload
class RacyCounterWorkload(Workload):
    """Unsynchronised read-modify-write increments (lost updates)."""

    name = "racy-counter"
    category = "micro"
    racy = True

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        iterations = 40 * max(scale, 1)
        total = workers * iterations

        asm = Assembler(name="racy-counter")
        asm.word("counter", 0)

        with asm.function("worker"):
            asm.li("r2", 0)
            asm.label("loop")
            asm.loadg("r3", "counter")
            asm.work(4)
            asm.addi("r3", "r3", 1)
            asm.storeg("r3", "counter")
            asm.work(9)
            asm.addi("r2", "r2", 1)
            asm.blti("r2", iterations, "loop")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.loadg("r2", "counter")
            a.syscall("r3", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        def validate(kernel: Kernel) -> bool:
            # Lost updates may shrink the count; it can never exceed the
            # number of increments nor drop below one thread's worth.
            if len(kernel.output) != 1:
                return False
            counted = kernel.output[0]
            return iterations <= counted <= total

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=True,
            validate=validate,
            expected={"increments": total},
        )


@register_workload
class RacyLazyInitWorkload(Workload):
    """Unsynchronised check-then-init (double initialisation / torn reads).

    Every worker checks a shared flag without a lock, initialises the
    shared value if it looks unset, then consumes the value. Under some
    interleavings workers observe the value before it is published.
    """

    name = "racy-lazyinit"
    category = "micro"
    racy = True

    MAGIC = 42

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rounds = 8 * max(scale, 1)

        asm = Assembler(name="racy-lazyinit")
        asm.word("flag", 0)
        asm.word("value", 0)
        asm.word("sum", 0)

        with asm.function("worker"):
            asm.li("r2", 0)          # round
            asm.li("r3", 0)          # private sum
            asm.label("round")
            asm.loadg("r4", "flag")
            asm.bnei("r4", 0, "ready")
            asm.work(25)             # "expensive" initialisation
            asm.li("r5", self.MAGIC)
            asm.storeg("r5", "value")
            asm.li("r6", 1)
            asm.storeg("r6", "flag")
            asm.label("ready")
            asm.loadg("r7", "value")
            asm.add("r3", "r3", "r7")
            asm.work(12)
            asm.addi("r2", "r2", 1)
            asm.blti("r2", rounds, "round")
            asm.li("r8", "sum")
            asm.fetchadd("r9", "r8", 0, "r3")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.loadg("r2", "sum")
            a.syscall("r3", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        max_sum = workers * rounds * self.MAGIC

        def validate(kernel: Kernel) -> bool:
            if len(kernel.output) != 1:
                return False
            observed = kernel.output[0]
            # Unpublished reads contribute 0; everything else MAGIC.
            return 0 <= observed <= max_sum and observed % self.MAGIC == 0

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=True,
            validate=validate,
            expected={"max_sum": max_sum},
        )
