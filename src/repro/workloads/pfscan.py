"""pfscan-like parallel file scan.

Workers pull chunks from a shared descriptor under a mutex, count
occurrences of a needle value privately, and fold their counts into a
global total with an atomic add — the real tool's structure (parallel
grep with a work-stealing file cursor). The total is schedule-independent.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

INPUT_FILE = 0
NEEDLE = 7


@register_workload
class PfscanWorkload(Workload):
    """Parallel scan/grep over one input file."""

    name = "pfscan"
    category = "client"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        chunk_words = 32
        chunks = 8 * scale + workers
        data = [rng.randint(0, 15) for _ in range(chunks * chunk_words)]
        expected_count = data.count(NEEDLE)
        scan_cost = 40

        asm = Assembler(name="pfscan")
        asm.word("infd", 0)
        asm.word("inlock", 0)
        asm.word("count", 0)

        with asm.function("worker"):
            asm.li("r2", chunk_words)
            asm.syscall("r10", SyscallKind.ALLOC, args=["r2"])
            asm.li("r15", 0)  # private running count
            asm.label("loop")
            asm.li("r3", "inlock")
            asm.lock("r3")
            asm.loadg("r4", "infd")
            asm.li("r6", chunk_words)
            asm.syscall("r5", SyscallKind.READ, args=["r4", "r10", "r6"])
            asm.unlock("r3")
            asm.beqi("r5", 0, "done")
            asm.li("r11", 0)
            asm.label("scan")
            asm.add("r12", "r10", "r11")
            asm.load("r13", "r12", 0)
            asm.seqi("r14", "r13", NEEDLE)
            asm.add("r15", "r15", "r14")
            asm.addi("r11", "r11", 1)
            asm.blt("r11", "r5", "scan")
            asm.work(scan_cost)
            asm.jmp("loop")
            asm.label("done")
            asm.li("r16", "count")
            asm.fetchadd("r17", "r16", 0, "r15")
            asm.exit_()

        def prologue(a: Assembler) -> None:
            a.li("r2", INPUT_FILE)
            a.syscall("r3", SyscallKind.OPEN, args=["r2"])
            a.storeg("r3", "infd")

        def epilogue(a: Assembler) -> None:
            a.loadg("r2", "count")
            a.syscall("r3", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, prologue=prologue, epilogue=epilogue)
        image = asm.assemble()

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected_count]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(files={INPUT_FILE: data}),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"matches": expected_count, "input_words": len(data)},
        )
