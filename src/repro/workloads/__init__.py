"""Workloads: the paper's benchmark suite as guest programs.

Client utilities (pbzip2-, pfscan-, aget-like), servers (Apache-, MySQL-
like), SPLASH-2-style scientific kernels (fft, lu, ocean, radix, water)
and racy microbenchmarks. Each workload reproduces the synchronisation
structure that matters to DoublePlay — lock-protected work queues, barrier
phases, accept loops, fine-grained row locking, unsynchronised accesses —
and validates its own output end to end, so record/replay fidelity is
checked on real program results, not just state hashes.
"""

from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    WORKLOADS,
    build_workload,
    workload_names,
    register_workload,
)
from repro.workloads.pbzip import PbzipWorkload
from repro.workloads.pfscan import PfscanWorkload
from repro.workloads.aget import AgetWorkload
from repro.workloads.apache import ApacheWorkload
from repro.workloads.mysql import MysqlWorkload
from repro.workloads.prodcons import ProdConsWorkload, ProdConsSemWorkload
from repro.workloads.racey import RacyCounterWorkload, RacyLazyInitWorkload
from repro.workloads.splash import (
    FftWorkload,
    LuWorkload,
    OceanWorkload,
    RadixWorkload,
    WaterWorkload,
)

__all__ = [
    "Workload",
    "WorkloadInstance",
    "WORKLOADS",
    "build_workload",
    "workload_names",
    "register_workload",
    "PbzipWorkload",
    "PfscanWorkload",
    "AgetWorkload",
    "ApacheWorkload",
    "MysqlWorkload",
    "ProdConsWorkload",
    "ProdConsSemWorkload",
    "RacyCounterWorkload",
    "RacyLazyInitWorkload",
    "FftWorkload",
    "LuWorkload",
    "OceanWorkload",
    "RadixWorkload",
    "WaterWorkload",
]
