"""Producer/consumer bounded buffers — condvar and semaphore flavours.

A make-jobserver-like pipeline: producers enqueue work items into a small
ring buffer, consumers drain and checksum them. Two classic
synchronisation styles, each its own workload:

* ``prodcons`` — one mutex plus *not-full*/*not-empty* condition
  variables with wait loops (pthread_cond discipline);
* ``prodcons-sem`` — counting semaphores for slots and items plus a mutex
  for the ring indices (the semaphore-pipeline idiom).

The item multiset is schedule-independent, so the summed checksum
validates exactly. These are the suite's only workloads driving condition
variables and semaphores through the full record/replay pipeline.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

RING = 4


def _split_workers(workers: int):
    producers = max(workers // 2, 1)
    consumers = max(workers - producers, 1)
    return producers, consumers


def _item_value(producer: int, seq: int) -> int:
    return (producer + 1) * 1000 + seq * 7 + 1


def _emit_ring_setup(asm: Assembler) -> None:
    asm.array("ring", RING)
    asm.word("head", 0)      # next slot to fill
    asm.word("tail", 0)      # next slot to drain
    asm.word("count", 0)     # occupied slots
    asm.word("mutex", 0)
    asm.word("notfull", 0)
    asm.word("notempty", 0)
    asm.word("sum", 0)
    asm.word("slots_sem", 0)
    asm.word("items_sem", 0)


def _emit_enqueue(asm: Assembler) -> None:
    """ring[head] = r4; head = (head+1) % RING; count++ (mutex held)."""
    asm.loadg("r5", "head")
    asm.li("r6", "ring")
    asm.add("r6", "r6", "r5")
    asm.store("r4", "r6", 0)
    asm.addi("r5", "r5", 1)
    asm.li("r7", RING)
    asm.mod("r5", "r5", "r7")
    asm.storeg("r5", "head")
    asm.loadg("r8", "count")
    asm.addi("r8", "r8", 1)
    asm.storeg("r8", "count")


def _emit_dequeue(asm: Assembler) -> None:
    """r4 = ring[tail]; tail = (tail+1) % RING; count-- (mutex held)."""
    asm.loadg("r5", "tail")
    asm.li("r6", "ring")
    asm.add("r6", "r6", "r5")
    asm.load("r4", "r6", 0)
    asm.addi("r5", "r5", 1)
    asm.li("r7", RING)
    asm.mod("r5", "r5", "r7")
    asm.storeg("r5", "tail")
    asm.loadg("r8", "count")
    asm.addi("r8", "r8", -1)
    asm.storeg("r8", "count")


def _epilogue(asm: Assembler):
    def epilogue(a: Assembler) -> None:
        a.loadg("r2", "sum")
        a.syscall("r3", SyscallKind.PRINT, args=["r2"])

    return epilogue


def _expected_sum(producers: int, per_producer: int) -> int:
    return sum(
        _item_value(producer, seq)
        for producer in range(producers)
        for seq in range(per_producer)
    )


@register_workload
class ProdConsWorkload(Workload):
    """Bounded buffer with condition variables."""

    name = "prodcons"
    category = "client"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        producers, consumers = _split_workers(workers)
        per_consumer = 4 * max(scale, 1)
        total_items = consumers * per_consumer
        # distribute items over producers (first producer takes the slack)
        base_quota = total_items // producers
        quotas = [base_quota] * producers
        quotas[0] += total_items - base_quota * producers

        asm = Assembler(name="prodcons")
        _emit_ring_setup(asm)

        quota_base = asm.array("quotas", producers, values=quotas)
        with asm.function("producer"):
            # r0 = producer index; quota looked up from the table
            asm.li("r2", quota_base)
            asm.add("r2", "r2", "r0")
            asm.load("r3", "r2", 0)     # my quota
            asm.li("r9", 0)             # seq
            asm.label("produce")
            asm.bge("r9", "r3", "done")
            # item = (idx+1)*1000 + seq*7 + 1
            asm.addi("r4", "r0", 1)
            asm.muli("r4", "r4", 1000)
            asm.muli("r10", "r9", 7)
            asm.add("r4", "r4", "r10")
            asm.addi("r4", "r4", 1)
            asm.li("r11", "mutex")
            asm.lock("r11")
            asm.label("fullcheck")
            asm.loadg("r12", "count")
            asm.blti("r12", RING, "space")
            asm.li("r13", "notfull")
            asm.condwait("r13", "r11")
            asm.jmp("fullcheck")
            asm.label("space")
            _emit_enqueue(asm)
            asm.li("r14", "notempty")
            asm.condsignal("r14")
            asm.unlock("r11")
            asm.work(12)
            asm.addi("r9", "r9", 1)
            asm.jmp("produce")
            asm.label("done")
            asm.exit_()

        with asm.function("consumer"):
            asm.li("r3", per_consumer)
            asm.li("r9", 0)             # consumed
            asm.li("r15", 0)            # private sum
            asm.label("consume")
            asm.bge("r9", "r3", "done")
            asm.li("r11", "mutex")
            asm.lock("r11")
            asm.label("emptycheck")
            asm.loadg("r12", "count")
            asm.bnei("r12", 0, "avail")
            asm.li("r13", "notempty")
            asm.condwait("r13", "r11")
            asm.jmp("emptycheck")
            asm.label("avail")
            _emit_dequeue(asm)
            asm.li("r14", "notfull")
            asm.condsignal("r14")
            asm.unlock("r11")
            asm.add("r15", "r15", "r4")
            asm.work(15)
            asm.addi("r9", "r9", 1)
            asm.jmp("consume")
            asm.label("done")
            asm.li("r16", "sum")
            asm.fetchadd("r17", "r16", 0, "r15")
            asm.exit_()

        with asm.function("main"):
            regs = []
            for index in range(producers):
                asm.li("r1", index)
                reg = f"r{20 + index}"
                asm.spawn(reg, "producer", args=["r1"])
                regs.append(reg)
            for index in range(consumers):
                reg = f"r{20 + producers + index}"
                asm.spawn(reg, "consumer")
                regs.append(reg)
            for reg in regs:
                asm.join(reg)
            _epilogue(asm)(asm)
            asm.exit_()

        image = asm.assemble()
        expected = sum(
            _item_value(producer, seq)
            for producer in range(producers)
            for seq in range(quotas[producer])
        )

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"items": total_items, "producers": producers,
                      "consumers": consumers},
        )


@register_workload
class ProdConsSemWorkload(Workload):
    """Bounded buffer with counting semaphores."""

    name = "prodcons-sem"
    category = "client"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        producers, consumers = _split_workers(workers)
        per_consumer = 4 * max(scale, 1)
        total_items = consumers * per_consumer
        base_quota = total_items // producers
        quotas = [base_quota] * producers
        quotas[0] += total_items - base_quota * producers

        asm = Assembler(name="prodcons-sem")
        _emit_ring_setup(asm)
        quota_base = asm.array("quotas", producers, values=quotas)

        with asm.function("producer"):
            asm.li("r2", quota_base)
            asm.add("r2", "r2", "r0")
            asm.load("r3", "r2", 0)
            asm.li("r9", 0)
            asm.label("produce")
            asm.bge("r9", "r3", "done")
            asm.addi("r4", "r0", 1)
            asm.muli("r4", "r4", 1000)
            asm.muli("r10", "r9", 7)
            asm.add("r4", "r4", "r10")
            asm.addi("r4", "r4", 1)
            asm.li("r11", "slots_sem")
            asm.semwait("r11")          # claim a free slot
            asm.li("r12", "mutex")
            asm.lock("r12")
            _emit_enqueue(asm)
            asm.unlock("r12")
            asm.li("r13", "items_sem")
            asm.sempost("r13")          # publish an item
            asm.work(12)
            asm.addi("r9", "r9", 1)
            asm.jmp("produce")
            asm.label("done")
            asm.exit_()

        with asm.function("consumer"):
            asm.li("r3", per_consumer)
            asm.li("r9", 0)
            asm.li("r15", 0)
            asm.label("consume")
            asm.bge("r9", "r3", "done")
            asm.li("r11", "items_sem")
            asm.semwait("r11")
            asm.li("r12", "mutex")
            asm.lock("r12")
            _emit_dequeue(asm)
            asm.unlock("r12")
            asm.li("r13", "slots_sem")
            asm.sempost("r13")
            asm.add("r15", "r15", "r4")
            asm.work(15)
            asm.addi("r9", "r9", 1)
            asm.jmp("consume")
            asm.label("done")
            asm.li("r16", "sum")
            asm.fetchadd("r17", "r16", 0, "r15")
            asm.exit_()

        with asm.function("main"):
            # initialise the slot semaphore to the ring size
            asm.li("r2", "slots_sem")
            asm.li("r3", RING)
            asm.seminit("r2", "r3")
            asm.li("r4", "items_sem")
            asm.li("r5", 0)
            asm.seminit("r4", "r5")
            regs = []
            for index in range(producers):
                asm.li("r1", index)
                reg = f"r{20 + index}"
                asm.spawn(reg, "producer", args=["r1"])
                regs.append(reg)
            for index in range(consumers):
                reg = f"r{20 + producers + index}"
                asm.spawn(reg, "consumer")
                regs.append(reg)
            for reg in regs:
                asm.join(reg)
            _epilogue(asm)(asm)
            asm.exit_()

        image = asm.assemble()
        expected = sum(
            _item_value(producer, seq)
            for producer in range(producers)
            for seq in range(quotas[producer])
        )

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"items": total_items, "producers": producers,
                      "consumers": consumers},
        )
