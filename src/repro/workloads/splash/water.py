"""water: n-body-style iterations with a lock-protected global reduction.

Each iteration every thread reads *all* molecule positions (read-only
all-to-all sharing, like the original's force computation), folds a
"potential" contribution into a global accumulator under a mutex, then —
after a barrier — updates its own molecules' positions. Mixing barriers
with a contended lock makes this the richest sync pattern in the suite.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


def _model(positions, iterations, workers):
    positions = list(positions)
    n = len(positions)
    chunk = n // workers
    potential = 0
    for _ in range(iterations):
        force_total = sum(positions)
        forces = [wrap_word(force_total + positions[i]) for i in range(n)]
        for w in range(workers):
            contribution = 0
            for i in range(w * chunk, (w + 1) * chunk):
                contribution = wrap_word(contribution + forces[i])
            potential = wrap_word(potential + contribution)
        positions = [
            wrap_word(positions[i] * 3 + forces[i]) for i in range(n)
        ]
    return positions, potential


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class WaterWorkload(Workload):
    """Force/update iterations with a global potential accumulator."""

    name = "water"
    category = "scientific"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        n = 8 * workers
        iterations = 2 * max(scale, 1)
        chunk = n // workers
        force_cost = 6 * n
        positions = [rng.randint(1, 1 << 24) for _ in range(n)]

        asm = Assembler(name="water")
        asm.page_aligned_array("pos", n, values=positions)
        asm.page_aligned_array("forces", n)
        asm.word("potential", 0)
        asm.word("potlock", 0)
        asm.word("barrier", 0)

        with asm.function("worker"):
            asm.muli("r2", "r0", chunk)     # lo
            asm.addi("r3", "r2", chunk)     # hi
            for it in range(iterations):
                # force_total = sum of all positions (read-all sharing)
                asm.li("r4", 0)
                asm.li("r5", 0)
                asm.label(f"sum{it}")
                asm.li("r6", "pos")
                asm.add("r6", "r6", "r5")
                asm.load("r7", "r6", 0)
                asm.add("r4", "r4", "r7")
                asm.addi("r5", "r5", 1)
                asm.blti("r5", n, f"sum{it}")
                asm.work(force_cost)
                # my forces and my potential contribution
                asm.li("r8", 0)                 # contribution
                asm.mov("r5", "r2")
                asm.label(f"force{it}")
                asm.li("r6", "pos")
                asm.add("r6", "r6", "r5")
                asm.load("r7", "r6", 0)
                asm.add("r9", "r4", "r7")       # force[i]
                asm.li("r10", "forces")
                asm.add("r10", "r10", "r5")
                asm.store("r9", "r10", 0)
                asm.add("r8", "r8", "r9")
                asm.addi("r5", "r5", 1)
                asm.blt("r5", "r3", f"force{it}")
                # fold contribution into the global potential under lock
                asm.li("r11", "potlock")
                asm.lock("r11")
                asm.loadg("r12", "potential")
                asm.add("r12", "r12", "r8")
                asm.storeg("r12", "potential")
                asm.unlock("r11")
                asm.li("r13", "barrier")
                asm.li("r14", workers)
                asm.barrier("r13", "r14")
                # update my positions from my forces
                asm.mov("r5", "r2")
                asm.label(f"upd{it}")
                asm.li("r6", "pos")
                asm.add("r6", "r6", "r5")
                asm.load("r7", "r6", 0)
                asm.muli("r7", "r7", 3)
                asm.li("r10", "forces")
                asm.add("r10", "r10", "r5")
                asm.load("r9", "r10", 0)
                asm.add("r7", "r7", "r9")
                asm.store("r7", "r6", 0)
                asm.addi("r5", "r5", 1)
                asm.blt("r5", "r3", f"upd{it}")
                asm.barrier("r13", "r14")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            a.li("r3", 0)
            a.label("cks")
            a.li("r4", "pos")
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.addi("r3", "r3", 1)
            a.blti("r3", n, "cks")
            a.loadg("r7", "potential")
            a.muli("r8", "r2", 31)
            a.add("r2", "r8", "r7")
            a.syscall("r9", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        final_positions, potential = _model(positions, iterations, workers)
        expected = wrap_word(_checksum(final_positions) * 31 + potential)

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"molecules": n, "iterations": iterations},
        )
