"""ocean: iterative stencil relaxation with boundary sharing.

Simplified from the 2-D grid to a 1-D ring — the property DoublePlay (and
the CREW baseline) care about is that each iteration reads the neighbour
cells at partition boundaries, written by other threads in the previous
iteration. Double buffering plus a barrier per iteration keeps it
race-free, exactly like the original's red-black phases.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


def _model(cells, iterations):
    current = list(cells)
    n = len(current)
    for _ in range(iterations):
        current = [
            wrap_word(
                (current[(i - 1) % n] + current[i] * 2 + current[(i + 1) % n]) >> 1
            )
            for i in range(n)
        ]
    return current


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class OceanWorkload(Workload):
    """Ring stencil relaxation."""

    name = "ocean"
    category = "scientific"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        n = 24 * workers
        iterations = 2 * max(scale, 1) + 2  # even: result lands in grid A
        chunk = n // workers
        cost = 3 * chunk
        cells = [rng.randint(0, 1 << 24) for _ in range(n)]

        asm = Assembler(name="ocean")
        asm.page_aligned_array("gridA", n, values=cells)
        asm.page_aligned_array("gridB", n)
        asm.word("barrier", 0)

        with asm.function("worker"):
            asm.muli("r2", "r0", chunk)     # lo
            asm.addi("r3", "r2", chunk)     # hi
            asm.li("r4", "gridA")           # src
            asm.li("r5", "gridB")           # dst
            for it in range(iterations):
                asm.mov("r6", "r2")
                asm.label(f"cell{it}")
                # left, centre, right with ring wraparound
                asm.addi("r7", "r6", n - 1)
                asm.li("r8", n)
                asm.mod("r7", "r7", "r8")
                asm.add("r9", "r4", "r7")
                asm.load("r10", "r9", 0)        # left
                asm.add("r9", "r4", "r6")
                asm.load("r11", "r9", 0)        # centre
                asm.addi("r7", "r6", 1)
                asm.mod("r7", "r7", "r8")
                asm.add("r9", "r4", "r7")
                asm.load("r12", "r9", 0)        # right
                asm.muli("r11", "r11", 2)
                asm.add("r10", "r10", "r11")
                asm.add("r10", "r10", "r12")
                asm.shri("r10", "r10", 1)
                asm.add("r9", "r5", "r6")
                asm.store("r10", "r9", 0)
                asm.addi("r6", "r6", 1)
                asm.blt("r6", "r3", f"cell{it}")
                asm.work(cost)
                asm.mov("r13", "r4")
                asm.mov("r4", "r5")
                asm.mov("r5", "r13")
                asm.li("r14", "barrier")
                asm.li("r15", workers)
                asm.barrier("r14", "r15")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            a.li("r3", 0)
            a.label("cks")
            a.li("r4", "gridA")
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.addi("r3", "r3", 1)
            a.blti("r3", n, "cks")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        expected = _checksum(_model(cells, iterations))

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"cells": n, "iterations": iterations},
        )
