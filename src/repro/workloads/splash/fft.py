"""fft: barrier-phased strided butterfly over a double-buffered array.

Each phase p combines element i with element (i + 2^p) mod n from the
previous phase's buffer — the cross-partition strided reads of a real FFT
— then all threads barrier before the buffers swap roles.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


def _model(data, phases):
    current = list(data)
    n = len(current)
    for phase in range(phases):
        stride = (1 << phase) % n
        current = [
            wrap_word(current[i] * 3 + current[(i + stride) % n])
            for i in range(n)
        ]
    return current


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class FftWorkload(Workload):
    """Strided butterfly kernel."""

    name = "fft"
    category = "scientific"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        n = 16 * workers * max(scale, 1)
        phases = 4  # even: final data ends up in buffer A
        chunk = n // workers
        flop_cost = 4 * chunk
        data = [rng.randint(1, 1 << 30) for _ in range(n)]

        asm = Assembler(name="fft")
        asm.page_aligned_array("bufA", n, values=data)
        asm.page_aligned_array("bufB", n)
        asm.word("barrier", 0)

        with asm.function("worker"):
            # r0 = index; r2 = lo, r3 = hi
            asm.muli("r2", "r0", chunk)
            asm.addi("r3", "r2", chunk)
            asm.li("r4", "bufA")   # src
            asm.li("r5", "bufB")   # dst
            asm.li("r6", 1)        # stride
            for _ in range(phases):
                asm.mov("r7", "r2")            # i
                asm.label(f"inner{_}")
                asm.add("r8", "r7", "r6")
                asm.li("r9", n)
                asm.mod("r8", "r8", "r9")      # (i + stride) % n
                asm.add("r10", "r4", "r7")
                asm.load("r11", "r10", 0)      # src[i]
                asm.add("r12", "r4", "r8")
                asm.load("r13", "r12", 0)      # src[(i+stride)%n]
                asm.muli("r11", "r11", 3)
                asm.add("r11", "r11", "r13")
                asm.add("r14", "r5", "r7")
                asm.store("r11", "r14", 0)
                asm.addi("r7", "r7", 1)
                asm.blt("r7", "r3", f"inner{_}")
                asm.work(flop_cost)
                # swap buffers, double the stride, barrier
                asm.mov("r15", "r4")
                asm.mov("r4", "r5")
                asm.mov("r5", "r15")
                asm.muli("r6", "r6", 2)
                asm.li("r16", "barrier")
                asm.li("r17", workers)
                asm.barrier("r16", "r17")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            a.li("r3", 0)
            a.label("cks")
            a.li("r4", "bufA")
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.addi("r3", "r3", 1)
            a.blti("r3", n, "cks")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        expected = _checksum(_model(data, phases))

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"n": n, "phases": phases},
        )
