"""radix: parallel radix sort (histogram → prefix → permute per pass).

Per 4-bit digit pass: each thread histograms its segment of the source
array into a private counts row; after a barrier, thread 0 turns the
count matrix into per-(thread, digit) starting offsets (a stable prefix
sum); after another barrier every thread permutes its segment into the
destination array through its private offset row; a final barrier swaps
the buffers. Stable and race-free — and heavy on barriers, like the
original.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

DIGITS = 16  # 4-bit digits
PASSES = 3   # sorts keys < 16**3 = 4096


def _checksum(words) -> int:
    value = 0
    for index, word in enumerate(words):
        value = wrap_word(value * 31 + word + index)
    return value


@register_workload
class RadixWorkload(Workload):
    """Parallel stable radix sort."""

    name = "radix"
    category = "scientific"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        n = 16 * workers * max(scale, 1)
        chunk = n // workers
        keys = [rng.randint(0, (DIGITS ** PASSES) - 1) for _ in range(n)]

        asm = Assembler(name="radix")
        asm.page_aligned_array("keysA", n, values=keys)
        asm.page_aligned_array("keysB", n)
        asm.page_aligned_array("counts", workers * DIGITS)
        asm.page_aligned_array("offsets", workers * DIGITS)
        asm.word("barrier", 0)

        with asm.function("worker"):
            asm.muli("r2", "r0", chunk)        # lo
            asm.addi("r3", "r2", chunk)        # hi
            asm.muli("r4", "r0", DIGITS)       # my counts/offsets row offset
            asm.li("r5", "keysA")              # src
            asm.li("r6", "keysB")              # dst
            for p in range(PASSES):
                shift = 4 * p
                # zero my counts row
                asm.li("r7", 0)
                asm.label(f"zero{p}")
                asm.li("r8", "counts")
                asm.add("r8", "r8", "r4")
                asm.add("r8", "r8", "r7")
                asm.li("r9", 0)
                asm.store("r9", "r8", 0)
                asm.addi("r7", "r7", 1)
                asm.blti("r7", DIGITS, f"zero{p}")
                # histogram my segment
                asm.mov("r7", "r2")
                asm.label(f"hist{p}")
                asm.add("r8", "r5", "r7")
                asm.load("r9", "r8", 0)
                asm.shri("r10", "r9", shift)
                asm.li("r11", DIGITS - 1)
                asm.and_("r10", "r10", "r11")
                asm.li("r12", "counts")
                asm.add("r12", "r12", "r4")
                asm.add("r12", "r12", "r10")
                asm.load("r13", "r12", 0)
                asm.addi("r13", "r13", 1)
                asm.store("r13", "r12", 0)
                asm.addi("r7", "r7", 1)
                asm.blt("r7", "r3", f"hist{p}")
                asm.li("r14", "barrier")
                asm.li("r15", workers)
                asm.barrier("r14", "r15")
                # thread 0: stable prefix over (digit, thread)
                asm.bnei("r0", 0, f"noprefix{p}")
                asm.li("r7", 0)    # running offset
                asm.li("r8", 0)    # digit
                asm.label(f"pfd{p}")
                asm.li("r9", 0)    # thread
                asm.label(f"pft{p}")
                asm.muli("r10", "r9", DIGITS)
                asm.add("r10", "r10", "r8")
                asm.li("r11", "offsets")
                asm.add("r11", "r11", "r10")
                asm.store("r7", "r11", 0)
                asm.li("r12", "counts")
                asm.add("r12", "r12", "r10")
                asm.load("r13", "r12", 0)
                asm.add("r7", "r7", "r13")
                asm.addi("r9", "r9", 1)
                asm.blti("r9", workers, f"pft{p}")
                asm.addi("r8", "r8", 1)
                asm.blti("r8", DIGITS, f"pfd{p}")
                asm.label(f"noprefix{p}")
                asm.barrier("r14", "r15")
                # permute my segment through my offset row
                asm.mov("r7", "r2")
                asm.label(f"perm{p}")
                asm.add("r8", "r5", "r7")
                asm.load("r9", "r8", 0)
                asm.shri("r10", "r9", shift)
                asm.li("r11", DIGITS - 1)
                asm.and_("r10", "r10", "r11")
                asm.li("r12", "offsets")
                asm.add("r12", "r12", "r4")
                asm.add("r12", "r12", "r10")
                asm.load("r13", "r12", 0)       # my next slot for this digit
                asm.addi("r16", "r13", 1)
                asm.store("r16", "r12", 0)
                asm.add("r17", "r6", "r13")
                asm.store("r9", "r17", 0)
                asm.addi("r7", "r7", 1)
                asm.blt("r7", "r3", f"perm{p}")
                asm.barrier("r14", "r15")
                # swap src/dst
                asm.mov("r18", "r5")
                asm.mov("r5", "r6")
                asm.mov("r6", "r18")
            asm.exit_()

        final_symbol = "keysB" if PASSES % 2 else "keysA"

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            a.li("r3", 0)
            a.label("cks")
            a.li("r4", final_symbol)
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.add("r2", "r2", "r3")
            a.addi("r3", "r3", 1)
            a.blti("r3", n, "cks")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        expected = _checksum(sorted(keys))

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"keys": n, "passes": PASSES},
        )
