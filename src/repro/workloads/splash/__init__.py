"""SPLASH-2-style scientific kernels.

Barrier-phased data-parallel programs with the sharing patterns of the
originals: fft (all-to-all stride access, double buffered), lu (one owner
computes a diagonal block everyone reads), ocean (stencil with
partition-boundary sharing; simplified to a 1-D ring — the boundary
sharing is what matters), radix (histogram + prefix + permute), and water
(read-all positions, lock-protected global accumulation). All race-free
by construction; each validates a final checksum against a Python model
of the same integer recurrence.
"""

from repro.workloads.splash.fft import FftWorkload
from repro.workloads.splash.lu import LuWorkload
from repro.workloads.splash.ocean import OceanWorkload
from repro.workloads.splash.radix import RadixWorkload
from repro.workloads.splash.water import WaterWorkload

__all__ = [
    "FftWorkload",
    "LuWorkload",
    "OceanWorkload",
    "RadixWorkload",
    "WaterWorkload",
]
