"""lu: blocked LU-style factorisation phases.

Step k: the thread owning step k (k mod W) recomputes the shared diagonal
block; everyone barriers; all threads update their private blocks reading
the diagonal block (one-writer-then-all-readers sharing); barrier again.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)


def _model(diag, blocks, steps, workers):
    diag = list(diag)
    blocks = [list(block) for block in blocks]
    width = len(diag)
    for k in range(steps):
        diag = [wrap_word(diag[j] * 5 + k + j) for j in range(width)]
        for block in blocks:
            for j in range(width):
                block[j] = wrap_word(block[j] + diag[j] * (k + 1))
    return diag, blocks


def _checksum(words) -> int:
    value = 0
    for word in words:
        value = wrap_word(value * 31 + word)
    return value


@register_workload
class LuWorkload(Workload):
    """Diagonal-block factorisation."""

    name = "lu"
    category = "scientific"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        width = 16
        steps = 3 * max(scale, 1) + 1
        compute_cost = 6 * width
        diag0 = [rng.randint(1, 1 << 20) for _ in range(width)]
        blocks0 = [
            [rng.randint(1, 1 << 20) for _ in range(width)] for _ in range(workers)
        ]

        asm = Assembler(name="lu")
        asm.page_aligned_array("diag", width, values=diag0)
        for index, block in enumerate(blocks0):
            asm.page_aligned_array(f"block{index}", width, values=block)
        asm.word("barrier", 0)
        block_base = asm.address_of("block0")
        block_pitch = (
            asm.address_of("block1") - block_base if workers > 1 else 0
        )

        with asm.function("worker"):
            # r2 = my block base
            asm.muli("r2", "r0", block_pitch)
            asm.addi("r2", "r2", block_base)
            for k in range(steps):
                owner = k % workers
                # owner recomputes the diagonal block
                asm.bnei("r0", owner, f"skip{k}")
                asm.li("r3", 0)
                asm.label(f"diag{k}")
                asm.li("r4", "diag")
                asm.add("r4", "r4", "r3")
                asm.load("r5", "r4", 0)
                asm.muli("r5", "r5", 5)
                asm.addi("r5", "r5", k)
                asm.add("r5", "r5", "r3")
                asm.store("r5", "r4", 0)
                asm.addi("r3", "r3", 1)
                asm.blti("r3", width, f"diag{k}")
                asm.work(compute_cost)
                asm.label(f"skip{k}")
                asm.li("r6", "barrier")
                asm.li("r7", workers)
                asm.barrier("r6", "r7")
                # everyone folds the diagonal into their own block
                asm.li("r3", 0)
                asm.label(f"upd{k}")
                asm.li("r4", "diag")
                asm.add("r4", "r4", "r3")
                asm.load("r5", "r4", 0)
                asm.muli("r5", "r5", k + 1)
                asm.add("r8", "r2", "r3")
                asm.load("r9", "r8", 0)
                asm.add("r9", "r9", "r5")
                asm.store("r9", "r8", 0)
                asm.addi("r3", "r3", 1)
                asm.blti("r3", width, f"upd{k}")
                asm.work(compute_cost)
                asm.barrier("r6", "r7")
            asm.exit_()

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            # fold diag then every block
            for sym in ["diag"] + [f"block{i}" for i in range(workers)]:
                a.li("r3", 0)
                a.label(f"cks_{sym}")
                a.li("r4", sym)
                a.add("r4", "r4", "r3")
                a.load("r5", "r4", 0)
                a.muli("r6", "r2", 31)
                a.add("r2", "r6", "r5")
                a.addi("r3", "r3", 1)
                a.blti("r3", width, f"cks_{sym}")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, epilogue=epilogue)
        image = asm.assemble()

        diag_final, blocks_final = _model(diag0, blocks0, steps, workers)
        flat = list(diag_final)
        for block in blocks_final:
            flat.extend(block)
        expected = _checksum(flat)

        def validate(kernel: Kernel) -> bool:
            return kernel.output == [expected]

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(),
            workers=workers,
            racy=False,
            validate=validate,
            expected={"steps": steps, "width": width},
        )
