"""MySQL-like transactional server.

Worker threads claim transaction ids from an atomic counter and execute
transfers between account rows under per-row locks (taken in address order
to avoid deadlock — InnoDB-style fine-grained locking), then append a
commit record to a log file under the log mutex. Transfers commute, so the
final balance vector is schedule-independent even though row-lock
interleavings differ run to run — a good stress of sync-order hints.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.memory.layout import wrap_word
from repro.oskernel.kernel import Kernel, KernelSetup
from repro.oskernel.syscalls import SyscallKind
from repro.workloads.base import (
    Workload,
    WorkloadInstance,
    fork_join_main,
    register_workload,
)

LOG_FILE = 3


def _txn(txnid: int, accounts: int):
    src = (txnid * 7 + 3) % accounts
    dst = (txnid * 13 + 5) % accounts
    if src == dst:
        dst = (dst + 1) % accounts
    amount = txnid % 9 + 1
    return src, dst, amount


def _balances_checksum(balances) -> int:
    value = 0
    for balance in balances:
        value = wrap_word(value * 31 + balance)
    return value


@register_workload
class MysqlWorkload(Workload):
    """Row-locked transfer transactions with a commit log."""

    name = "mysql"
    category = "server"

    def build(self, workers: int = 2, scale: int = 1, seed: int = 0) -> WorkloadInstance:
        rng = self.rng(seed)
        accounts = 12
        transactions = 10 * scale + 2 * workers
        txn_cost = 120
        initial = [rng.randint(100, 999) for _ in range(accounts)]

        asm = Assembler(name="mysql")
        asm.array("balances", accounts, values=initial)
        asm.page_aligned_array("rowlocks", accounts)
        asm.word("nexttxn", 0)
        asm.word("loglock", 0)
        asm.word("logfd", 0)

        with asm.function("worker"):
            asm.li("r2", 1)
            asm.syscall("r18", SyscallKind.ALLOC, args=["r2"])  # commit record buf
            asm.label("loop")
            asm.li("r3", "nexttxn")
            asm.li("r4", 1)
            asm.fetchadd("r5", "r3", 0, "r4")   # r5 = txn id
            asm.bgei("r5", transactions, "done")
            # src = (id*7+3) % accounts ; dst = (id*13+5) % accounts
            asm.muli("r6", "r5", 7)
            asm.addi("r6", "r6", 3)
            asm.li("r7", accounts)
            asm.mod("r6", "r6", "r7")           # src
            asm.muli("r8", "r5", 13)
            asm.addi("r8", "r8", 5)
            asm.mod("r8", "r8", "r7")           # dst
            asm.bne("r6", "r8", "distinct")
            asm.addi("r8", "r8", 1)
            asm.mod("r8", "r8", "r7")
            asm.label("distinct")
            # amount = id % 9 + 1
            asm.li("r9", 9)
            asm.mod("r9", "r5", "r9")
            asm.addi("r9", "r9", 1)
            # lock rows in index order
            asm.slt("r10", "r6", "r8")
            asm.beqi("r10", 1, "ordered")
            asm.mov("r11", "r8")    # lo = dst
            asm.mov("r12", "r6")    # hi = src
            asm.jmp("locks")
            asm.label("ordered")
            asm.mov("r11", "r6")    # lo = src
            asm.mov("r12", "r8")    # hi = dst
            asm.label("locks")
            asm.li("r13", "rowlocks")
            asm.add("r14", "r13", "r11")
            asm.lock("r14")
            asm.add("r15", "r13", "r12")
            asm.lock("r15")
            # transfer
            asm.li("r16", "balances")
            asm.add("r17", "r16", "r6")
            asm.load("r19", "r17", 0)
            asm.sub("r19", "r19", "r9")
            asm.store("r19", "r17", 0)
            asm.add("r17", "r16", "r8")
            asm.load("r19", "r17", 0)
            asm.add("r19", "r19", "r9")
            asm.store("r19", "r17", 0)
            asm.work(txn_cost)
            asm.unlock("r15")
            asm.unlock("r14")
            # commit record
            asm.store("r5", "r18", 0)
            asm.li("r2", "loglock")
            asm.lock("r2")
            asm.loadg("r19", "logfd")
            asm.li("r17", 1)
            asm.syscall("r16", SyscallKind.WRITE, args=["r19", "r18", "r17"])
            asm.unlock("r2")
            asm.jmp("loop")
            asm.label("done")
            asm.exit_()

        def prologue(a: Assembler) -> None:
            a.li("r2", LOG_FILE)
            a.syscall("r3", SyscallKind.OPEN, args=["r2"])
            a.storeg("r3", "logfd")

        def epilogue(a: Assembler) -> None:
            a.li("r2", 0)
            a.li("r3", 0)
            a.label("cks")
            a.li("r4", "balances")
            a.add("r4", "r4", "r3")
            a.load("r5", "r4", 0)
            a.muli("r6", "r2", 31)
            a.add("r2", "r6", "r5")
            a.addi("r3", "r3", 1)
            a.blti("r3", accounts, "cks")
            a.syscall("r7", SyscallKind.PRINT, args=["r2"])

        fork_join_main(asm, workers, prologue=prologue, epilogue=epilogue)
        image = asm.assemble()

        final = list(initial)
        for txnid in range(transactions):
            src, dst, amount = _txn(txnid, accounts)
            final[src] -= amount
            final[dst] += amount
        expected_checksum = _balances_checksum(final)

        def validate(kernel: Kernel) -> bool:
            log = kernel.fs.file_contents(LOG_FILE)
            return (
                kernel.output == [expected_checksum]
                and sorted(log) == list(range(transactions))
            )

        return WorkloadInstance(
            name=self.name,
            image=image,
            setup=KernelSetup(files={LOG_FILE: []}),
            workers=workers,
            racy=False,
            validate=validate,
            expected={
                "transactions": transactions,
                "accounts": accounts,
                "balance_sum": sum(final),
            },
        )
