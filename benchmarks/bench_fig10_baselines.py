"""Fig 10 — comparison with multiprocessor recording baselines.

The design-space picture the paper paints: uniprocessor recording is
simple but costs ~Wx; CREW page-ownership recording and value logging run
on all cores but tax every shared access; DoublePlay (with spare cores)
beats all three on the overhead axis.

Run: pytest benchmarks/bench_fig10_baselines.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.metrics import geomean_overhead
from repro.analysis.tables import render_table

COLUMNS = ["workload", "doubleplay", "uniproc", "crew", "valuelog"]


def test_fig10_baseline_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.baseline_comparison(workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Fig 10: recording overhead vs baselines (W=2)"))
    dp = geomean_overhead([r["doubleplay_raw"] for r in rows])
    uni = geomean_overhead([r["uniproc_raw"] for r in rows])
    crew = geomean_overhead([r["crew_raw"] for r in rows])
    # DoublePlay wins on average...
    assert dp < uni
    assert dp < crew
    # ...and uniprocessor recording costs about a core's worth (W=2 -> ~1x
    # extra for CPU-bound; geomean over the suite stays clearly above DP)
    assert uni > 0.3
