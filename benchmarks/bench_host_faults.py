"""Host fault-tolerance benchmark: what containment costs.

The host pool survives worker crashes, hangs and exceptions by retrying
the failed unit once on a fresh pool and, if that also fails, running it
serially on the coordinator (see ``repro.host.pool.HostExecutor``). The
recording is bit-identical either way; the only price is wall-clock
time. This bench measures that price for ``record --jobs 4``:

* ``clean``   — no faults injected: the containment machinery's idle
  cost (spec parsing, payload stamping, counters) on the happy path;
* ``slow``    — ``slow:unit1:0.02``: a straggling worker, no failure;
* ``crash``   — ``crash:unit1``: a worker death. The pool is rebuilt
  (workers respawned — the dominant cost), the unit retried, and the
  retry crashes again, so the unit finishes via the serial fallback;
* ``error``   — ``error:unit2``: a worker exception. Structured result,
  no pool damage, same retry-then-fallback path without respawn cost.

Each variant asserts its recording digest equals the serial (jobs=1)
digest — the benchmark doubles as an end-to-end containment check.
Results are written to ``BENCH_host_faults.json`` at the repo root.
There is no CI gate on these numbers: crash recovery cost is dominated
by process respawn, which varies too much across hosts to pin.

Usage::

    python benchmarks/bench_host_faults.py          # measure + print + write
    python benchmarks/bench_host_faults.py --quick  # small scale, 1 repeat
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder  # noqa: E402
from repro.host.pool import shutdown_shared_pool  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

WORKLOAD = "pbzip"  # multi-epoch pipeline: enough units for faults to land
JOBS = 4
EPOCH_DIVISOR = 12
VARIANTS = (
    ("clean", None),
    ("slow", "slow:unit1:0.02"),
    ("crash", "crash:unit1"),
    ("error", "error:unit2"),
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_faults.json"


def _record(config, scale, workers):
    instance = build_workload(WORKLOAD, workers=workers, scale=scale, seed=1)
    return DoublePlayRecorder(instance.image, instance.setup, config).record()


def run_suite(quick: bool, repeats: int, workers: int = 2):
    scale = 8 if quick else 16
    machine = MachineConfig(cores=workers)
    instance = build_workload(WORKLOAD, workers=workers, scale=scale, seed=1)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // EPOCH_DIVISOR, 500),
    )

    serial = _record(config, scale, workers)
    baseline_digest = serial.recording.final_digest
    parallel_config = config.replace(host_jobs=JOBS)

    rows = {}
    for label, spec in VARIANTS:
        if spec is None:
            os.environ.pop("REPRO_FAULT", None)
        else:
            os.environ["REPRO_FAULT"] = spec
        try:
            wall = math.inf
            # warm-up iteration pays pool spawn before the timed runs
            for _ in range(repeats + 1):
                shutdown_shared_pool()
                start = time.perf_counter()
                result = _record(parallel_config, scale, workers)
                wall = min(wall, time.perf_counter() - start)
            assert result.recording.final_digest == baseline_digest, (
                f"{label}: containment changed the recording"
            )
            rows[label] = {
                "wall_ms": round(wall * 1e3, 3),
                "faults": dict(result.host["faults"]),
            }
        finally:
            os.environ.pop("REPRO_FAULT", None)
    shutdown_shared_pool()

    clean = rows["clean"]["wall_ms"]
    for label in rows:
        rows[label]["overhead_vs_clean"] = round(
            rows[label]["wall_ms"] / clean - 1.0, 3
        )
    return {
        "mode": "quick" if quick else "full",
        "workload": WORKLOAD,
        "scale": scale,
        "jobs": JOBS,
        "repeats": repeats,
        "host_cpu_count": os.cpu_count() or 1,
        "epochs": serial.recording.epoch_count(),
        "variants": rows,
    }


def _print_suite(result):
    print(
        f"host fault containment ({result['mode']}, {result['workload']}, "
        f"scale={result['scale']}, jobs={result['jobs']}, "
        f"{result['epochs']} epochs):"
    )
    for label, row in result["variants"].items():
        counts = row["faults"]
        fired = ", ".join(f"{k}={v}" for k, v in counts.items() if v) or "none"
        print(
            f"  {label:<6} {row['wall_ms']:>9.1f}ms"
            f"  ({row['overhead_vs_clean']:+.1%} vs clean)  faults: {fired}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale, 1 repeat")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    result = run_suite(quick=args.quick, repeats=repeats)
    _print_suite(result)

    existing = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    existing[result["mode"]] = result
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {result['mode']} to {RESULT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
