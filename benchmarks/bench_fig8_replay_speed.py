"""Fig 8 — replay speed.

Sequential replay serialises the whole execution on one CPU (~Wx native
for CPU-bound programs). Parallel epoch replay re-executes all epochs
concurrently from their checkpoints and approaches — and for I/O-bound
programs beats — the native multicore time, which is DoublePlay's answer
to "replay is as scalable as recording".

Run: pytest benchmarks/bench_fig8_replay_speed.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.metrics import geomean_overhead
from repro.analysis.tables import render_table

COLUMNS = ["workload", "native", "sequential", "seq_x", "parallel", "par_x", "verified"]


def test_fig8_replay_speed(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.replay_speed_experiment(workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Fig 8: replay time relative to native (W=2)"))
    assert all(row["verified"] for row in rows)
    for row in rows:
        # parallel epoch replay beats sequential replay...
        assert row["par_x_raw"] < row["seq_x_raw"], row["workload"]
    # ...and on geometric mean sits well under sequential's cost
    seq_geo = geomean_overhead([r["seq_x_raw"] - 1 for r in rows])
    par_geo = geomean_overhead([r["par_x_raw"] - 1 for r in rows])
    assert par_geo < seq_geo
