"""Fig 6 — DoublePlay logging overhead with spare cores, 4 worker threads.

Paper anchor (abstract): ~28% average with four workers — higher than the
two-worker case because each epoch's uniprocessor re-execution serialises
four threads' work, deepening the pipeline and its drain.

Run: pytest benchmarks/bench_fig6_overhead_4workers.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.metrics import geomean_overhead
from repro.analysis.tables import render_table

COLUMNS = ["workload", "native", "makespan", "overhead", "epochs", "divergences"]


def test_fig6_overhead_four_workers(benchmark):
    def run():
        return (
            experiments.overhead_experiment(workers=4, spare_cores=True),
            experiments.overhead_experiment(workers=2, spare_cores=True),
        )

    rows4, rows2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows4, COLUMNS, title="Fig 6: logging overhead, W=4, spare cores (paper: ~28% avg)"))
    geomean4 = rows4[-1]["overhead_raw"]
    geomean2 = rows2[-1]["overhead_raw"]
    assert 0.0 < geomean4 < 0.60
    # the paper's central scaling shape: more workers -> more overhead
    assert geomean4 > geomean2, (
        f"W=4 geomean {geomean4:.1%} should exceed W=2 {geomean2:.1%}"
    )
