"""Flight-recorder benchmark: the window really bounds on-disk bytes.

The acceptance property for ``record --flight-window K`` is a *bound*:
on-disk log bytes must depend on the window, not the run length. Per
workload, two streamed recordings with the same epoch granularity and
the same window K — one short (a handful of epochs past K) and one
~4× longer — and the measurements:

* ``footprint_ratio`` — long-run disk bytes over short-run disk bytes,
  both with window K. Without GC this grows linearly with run length
  (the long run here writes ~4× the epochs); with the window it must
  stay within a constant factor (residual pack slack, the open
  segment, per-epoch size drift between scales). The committed number
  is CI-gated against ``FOOTPRINT_CEILING``.
* ``reclaim_factor`` — unwindowed long-run footprint over windowed
  long-run footprint: how much the slide+GC actually deleted.
* ``window_overhead`` — windowed record wall over unwindowed record
  wall (paired-ratio median, the repo's standard estimator): the
  price of refcounting, manifest slides, segment deletion and pack
  compaction on the record path.
* ``recover_ms`` — wall time of the full recovery path on the windowed
  artifact: open, ``verify()``, load the tail, replay it sequentially
  (verified = bit-identical per-epoch digests).

Results are written to ``BENCH_flight_recorder.json`` at the repo root.

Usage::

    python benchmarks/bench_flight_recorder.py            # measure + print
    python benchmarks/bench_flight_recorder.py --quick
    python benchmarks/bench_flight_recorder.py --write optimized
    python benchmarks/bench_flight_recorder.py --quick --check  # CI gate

``--check`` fails (exit 1) when the footprint ratio exceeds
``max(FOOTPRINT_CEILING, committed * (1 + BENCH_TOLERANCE))``, or when
any windowed run stopped replaying verified.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# Measure the GC/write path, not the device sync latency.
os.environ.setdefault("REPRO_LOG_FSYNC", "0")
# Commit every epoch so the window slides continuously — that is the
# flight-recorder steady state this benchmark is about.
os.environ.setdefault("REPRO_LOG_GROUP_KB", "1")

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.record.shards import ShardedLogReader  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

#: pbzip: page/syscall-heavy shards; apache: sync-heavy shards
WORKLOADS = ("pbzip", "apache")
WINDOW = 4
RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_flight_recorder.json"
)
#: long-run/short-run windowed footprint — the constant-factor bound.
#: Slack sources: the still-open segment, pack bytes below the
#: compaction threshold at close (reclaimed, but the long run carries
#: more churn), and per-epoch shard size drifting with workload scale.
FOOTPRINT_CEILING = 3.0


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _disk_bytes(directory):
    return sum(
        os.path.getsize(os.path.join(root, name))
        for root, _, names in os.walk(directory)
        for name in names
    )


def _record_durable(instance, machine, epoch_cycles, log_dir, window):
    shutil.rmtree(log_dir, ignore_errors=True)
    overrides = {
        "machine": machine,
        "epoch_cycles": epoch_cycles,
        "log_dir": log_dir,
        "log_spill": True,
        "flight_window": window,
    }
    config = DoublePlayConfig(**overrides)
    start = time.perf_counter()
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    wall = time.perf_counter() - start
    return result, wall


def measure_workload(name: str, short_scale: int, pairs: int, workdir: str):
    machine = MachineConfig(cores=2)
    long_scale = short_scale * 4
    short = build_workload(name, workers=2, scale=short_scale, seed=1)
    long_ = build_workload(name, workers=2, scale=long_scale, seed=1)
    native = run_native(short.image, short.setup, machine)
    # Fixed epoch granularity across both run lengths: the long run gets
    # ~4x the epochs, not 4x-longer epochs.
    epoch_cycles = max(native.duration // (WINDOW + 2), 500)

    dirs = {
        key: os.path.join(workdir, f"{name}-{key}")
        for key in ("short-win", "long-win", "long-full")
    }
    short_win, _ = _record_durable(
        short, machine, epoch_cycles, dirs["short-win"], WINDOW
    )
    long_win, _ = _record_durable(
        long_, machine, epoch_cycles, dirs["long-win"], WINDOW
    )
    long_full, _ = _record_durable(
        long_, machine, epoch_cycles, dirs["long-full"], None
    )
    short_epochs = short_win.stats["epochs"]
    long_epochs = long_win.stats["epochs"]
    assert long_epochs > short_epochs > WINDOW, (
        f"{name}: degenerate epoch counts {short_epochs}/{long_epochs} — "
        "the bound would be vacuous"
    )

    footprints = {key: _disk_bytes(path) for key, path in dirs.items()}
    footprint_ratio = footprints["long-win"] / footprints["short-win"]
    reclaim_factor = footprints["long-full"] / footprints["long-win"]

    # -- window overhead on the record path (paired-ratio median) --------
    ratios = []
    walls = {"windowed": [], "unwindowed": []}
    for _ in range(pairs):
        _, full_wall = _record_durable(
            long_, machine, epoch_cycles, dirs["long-full"], None
        )
        _, win_wall = _record_durable(
            long_, machine, epoch_cycles, dirs["long-win"], WINDOW
        )
        ratios.append(win_wall / full_wall)
        walls["unwindowed"].append(full_wall)
        walls["windowed"].append(win_wall)
    ratios.sort()
    window_overhead = ratios[len(ratios) // 2] - 1.0

    # -- full recovery path on the windowed artifact ---------------------
    def _recover():
        reader = ShardedLogReader(dirs["long-win"])
        assert reader.verify() == [], f"{name}: windowed log failed verify"
        tail = reader.load_recording()
        outcome = Replayer(long_.image, machine).replay_sequential(tail)
        assert outcome.verified, f"{name}: tail replay diverged"
        return outcome

    recover_walls = []
    for _ in range(max(2, pairs)):
        start = time.perf_counter()
        outcome = _recover()
        recover_walls.append(time.perf_counter() - start)

    durable = long_win.metrics.snapshot().get("durable", {})
    return {
        "window": WINDOW,
        "epochs": {"short": short_epochs, "long": long_epochs},
        "disk_bytes": {
            "short_windowed": footprints["short-win"],
            "long_windowed": footprints["long-win"],
            "long_unwindowed": footprints["long-full"],
        },
        "footprint_ratio": round(footprint_ratio, 3),
        "reclaim_factor": round(reclaim_factor, 3),
        "window_overhead": round(window_overhead, 4),
        "record_wall_ms": {
            key: round(min(values) * 1e3, 3) for key, values in walls.items()
        },
        "recover_ms": round(min(recover_walls) * 1e3, 3),
        "tail_epochs_replayed": outcome.epochs_replayed,
        "gc": {
            "window_slides": durable.get("window_slides", 0),
            "epochs_dropped": durable.get("window_epochs_dropped", 0),
            "segments_deleted": durable.get("segments_deleted", 0),
            "pack_compactions": durable.get("pack_compactions", 0),
            "segment_bytes_reclaimed": durable.get(
                "segment_bytes_reclaimed", 0
            ),
            "pack_bytes_reclaimed": durable.get("pack_bytes_reclaimed", 0),
        },
    }


def run_suite(quick: bool):
    short_scale = 4 if quick else 8
    pairs = 3 if quick else 7
    per_workload = {}
    workdir = tempfile.mkdtemp(prefix="bench-flight-")
    try:
        for name in WORKLOADS:
            per_workload[name] = measure_workload(
                name, short_scale=short_scale, pairs=pairs, workdir=workdir
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    headline = _geomean(
        [row["footprint_ratio"] for row in per_workload.values()]
    )
    reclaim = _geomean(
        [row["reclaim_factor"] for row in per_workload.values()]
    )
    overhead = (
        _geomean(
            [1.0 + row["window_overhead"] for row in per_workload.values()]
        )
        - 1.0
    )
    return {
        "mode": "quick" if quick else "full",
        "short_scale": short_scale,
        "window": WINDOW,
        "pairs": pairs,
        "host_cpu_count": os.cpu_count() or 1,
        "per_workload": per_workload,
        "headline": round(headline, 3),
        "reclaim_factor": round(reclaim, 3),
        "window_overhead": round(overhead, 4),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(
        f"flight recorder ({result['mode']}, window={result['window']}, "
        f"pairs={result['pairs']}):"
    )
    for name, row in result["per_workload"].items():
        disk = row["disk_bytes"]
        print(
            f"  {name:<8} {row['epochs']['short']:>2} vs "
            f"{row['epochs']['long']:>2} epochs: "
            f"{disk['short_windowed']}B vs {disk['long_windowed']}B windowed "
            f"({row['footprint_ratio']:.2f}x), unwindowed "
            f"{disk['long_unwindowed']}B ({row['reclaim_factor']:.2f}x "
            f"reclaimed)"
        )
        gc = row["gc"]
        print(
            f"           {gc['window_slides']} slide(s) dropped "
            f"{gc['epochs_dropped']} epoch(s); {gc['segments_deleted']} "
            f"segment(s) + {gc['pack_compactions']} compaction(s) freed "
            f"{gc['segment_bytes_reclaimed'] + gc['pack_bytes_reclaimed']}B; "
            f"record overhead {row['window_overhead']:+.1%}, recover+replay "
            f"{row['recover_ms']:.1f}ms ({row['tail_epochs_replayed']} "
            f"epochs)"
        )
    print(
        f"  HEADLINE footprint ratio {result['headline']:.2f}x "
        f"(ceiling {FOOTPRINT_CEILING:.1f}x), reclaim "
        f"{result['reclaim_factor']:.2f}x, window overhead "
        f"{result['window_overhead']:+.1%} (suite geomeans)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale")
    parser.add_argument(
        "--write", choices=("optimized",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the footprint bound regresses vs committed",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print(
                "check: no committed optimized numbers for this mode",
                file=sys.stderr,
            )
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
        # The absolute ceiling is the bar; committed + tolerance absorbs
        # box-to-box noise around it.
        ceiling = max(
            FOOTPRINT_CEILING, committed["headline"] * (1.0 + tolerance)
        )
        status = "ok" if result["headline"] <= ceiling else "REGRESSION"
        print(
            f"check: footprint ratio {result['headline']:.2f}x vs committed "
            f"{committed['headline']:.2f}x (ceiling {ceiling:.2f}x) → {status}"
        )
        return 1 if status != "ok" else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
