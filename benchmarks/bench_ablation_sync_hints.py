"""Ablation A — synchronisation-order hints.

The hints make the epoch-parallel execution follow the thread-parallel
run's grant order. With them, race-free programs never diverge; without
them, lock-grant lotteries alone cause rollbacks. This ablation justifies
the sync-log bytes in Table 2.

Run: pytest benchmarks/bench_ablation_sync_hints.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "sync_hints", "divergences", "overhead"]
NAMES = ["mysql", "pbzip", "water", "apache"]


def test_ablation_sync_hints(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.ablation_sync_hints(workers=2, names=NAMES),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Ablation A: sync-order hints on race-free workloads"))
    with_hints = [r for r in rows if r["sync_hints"]]
    without = [r for r in rows if not r["sync_hints"]]
    assert all(r["divergences"] == 0 for r in with_hints)
    assert sum(r["divergences"] for r in without) > sum(
        r["divergences"] for r in with_hints
    )
