"""Ablation C — how many spare cores does uniparallelism need?

Each epoch re-executes W worker threads' work on one CPU, so sustaining
the recording needs ~W executor cores. The sweep shrinks the executor
pool below W and shows overhead climbing as the epoch-parallel pipeline
falls behind — the paper's spare-core requirement, quantified.

Run: pytest benchmarks/bench_ablation_spare_cores.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "workers", "executors", "overhead"]


def test_ablation_spare_core_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.spare_core_sweep(name="fft", workers=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Ablation C: overhead vs executor pool size (fft, W=4)"))
    overheads = [row["overhead_raw"] for row in rows]
    # monotone non-increasing as executors grow
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))
    # one executor for four workers cannot keep up: overhead is severe
    assert overheads[0] > 2.0
    # a full pool (>= W) brings it down to the spare-core regime
    assert overheads[-1] < 0.5
