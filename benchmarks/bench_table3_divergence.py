"""Table 3 — divergence and forward recovery.

Racy programs make the epoch-parallel execution resolve races differently
from the thread-parallel run; DoublePlay detects the mismatch and commits
the uniprocessor result (forward recovery). The table shows divergence
and recovery counts with sync hints on/off, the overhead cost of
rollbacks, and — the guarantee that matters — that every recording still
replays exactly.

Run: pytest benchmarks/bench_table3_divergence.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = [
    "workload",
    "racy",
    "sync_hints",
    "epochs",
    "divergences",
    "recoveries",
    "overhead",
    "replay_ok",
]


def test_table3_divergence_and_recovery(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.divergence_experiment(workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Table 3: divergence and forward recovery"))
    # the recording guarantee holds across the board, races or not
    assert all(row["replay_ok"] for row in rows)
    # racy workloads diverge (with hints on, races are the only cause)
    racy_hinted = [r for r in rows if r["racy"] and r["sync_hints"]]
    assert any(r["divergences"] > 0 for r in racy_hinted)
    # race-free workloads with hints never diverge
    clean_hinted = [r for r in rows if not r["racy"] and r["sync_hints"]]
    assert all(r["divergences"] == 0 for r in clean_hinted)
    # bookkeeping: every divergence was recovered
    assert all(r["divergences"] == r["recoveries"] for r in rows)
