"""Ablation B — checkpoint (copy-on-write) cost.

DoublePlay's spare-core overhead is dominated by checkpointing: every page
the application dirties per epoch is copied once. Sweeping the per-page
copy cost shows overhead scaling with checkpoint pressure — the knob a
deployment tunes by sizing epochs against the application's write set.

Run: pytest benchmarks/bench_ablation_checkpoint_cost.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "page_cow_copy", "overhead", "divergences"]


def test_ablation_checkpoint_cost(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.ablation_checkpoint_cost(name="ocean", workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Ablation B: overhead vs copy-on-write page cost (ocean, W=2)"))
    overheads = [row["overhead_raw"] for row in rows]
    # overhead grows monotonically with page-copy cost
    assert all(a <= b + 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] > overheads[0]
    # correctness is cost-independent
    assert all(row["divergences"] == 0 for row in rows)
