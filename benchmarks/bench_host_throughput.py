"""Host-throughput benchmark: simulated guest ops per host wall-clock second.

Every experiment in this reproduction runs guest programs through
``repro.exec.interpreter.step`` and ``AddressSpace.read/write``, so host
throughput — guest MIPS, millions of retired guest instructions per host
second — gates how large a workload, worker count or epoch sweep the
benchmark suite can afford. This bench pins that number for three
representative workloads (pbzip: syscall+lock pipeline, fft:
compute+barrier kernel, apache: request server) in two modes:

* **native** — a plain multicore run, exercising the interpreter and the
  memory fast paths;
* **record** — a full DoublePlay recording pass, adding checkpoints,
  copy-on-write traffic, epoch re-execution and state hashing. The
  throughput denominator is the *application's* retired ops, so this
  measures "application ops recorded per second";
* **replay** — a sequential replay of the recording on the uniprocessor
  engine, the path trace-level superinstructions speed up the most
  (long uninterrupted timeslices, no lock-step window bound). Replay is
  reported per workload but kept out of the headline score so the
  geomean stays comparable with the committed ``seed`` section, which
  predates replay measurement.

Results are written to ``BENCH_host_throughput.json`` next to this file,
with a ``seed`` section (the interpreter as of the growth seed) and an
``optimized`` section, so the host-perf trajectory is tracked across PRs.

Usage::

    python benchmarks/bench_host_throughput.py                # measure + print
    python benchmarks/bench_host_throughput.py --quick        # small scale
    python benchmarks/bench_host_throughput.py --write seed   # record baseline
    python benchmarks/bench_host_throughput.py --write optimized
    python benchmarks/bench_host_throughput.py --quick --check  # CI gate

``--check`` fails (exit 1) if the measured geomean guest-MIPS regresses
more than ``BENCH_TOLERANCE`` (default 20%) against the committed
``optimized`` numbers for the same mode (quick/full), or if it fails to
clear ``SEED_SPEEDUP_FLOOR`` (default 1.5x) times the committed ``seed``
geomean — the cumulative-optimisation floor over the PR 1 baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

WORKLOADS = ("pbzip", "fft", "apache")
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_throughput.json"


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _retired_ops(engine) -> int:
    return sum(ctx.retired for ctx in engine.contexts.values())


def measure_workload(name: str, scale: int, repeats: int, workers: int = 3):
    """Best-of-``repeats`` guest-MIPS for one workload, both modes."""
    machine = MachineConfig(cores=workers)
    native_best = 0.0
    record_best = 0.0
    replay_best = 0.0
    retired = 0
    for _ in range(repeats):
        instance = build_workload(name, workers=workers, scale=scale, seed=1)
        start = time.perf_counter()
        native = run_native(instance.image, instance.setup, machine)
        elapsed = time.perf_counter() - start
        retired = _retired_ops(native.engine)
        native_best = max(native_best, retired / elapsed / 1e6)

        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 18, 500),
        )
        start = time.perf_counter()
        recorded = DoublePlayRecorder(instance.image, instance.setup, config).record()
        elapsed = time.perf_counter() - start
        record_best = max(record_best, retired / elapsed / 1e6)

        start = time.perf_counter()
        Replayer(instance.image, machine).replay_sequential(recorded.recording)
        elapsed = time.perf_counter() - start
        replay_best = max(replay_best, retired / elapsed / 1e6)
    # Score stays geomean(native, record) — the committed seed section has
    # no replay numbers, and changing the score basis would invalidate the
    # cross-PR trajectory.
    score = _geomean([native_best, record_best])
    return {
        "retired_ops": retired,
        "native_mips": round(native_best, 4),
        "record_mips": round(record_best, 4),
        "replay_mips": round(replay_best, 4),
        "mips": round(score, 4),
    }


def run_suite(quick: bool, repeats: int):
    scale = 8 if quick else 24
    per_workload = {}
    for name in WORKLOADS:
        per_workload[name] = measure_workload(name, scale=scale, repeats=repeats)
    geomean = _geomean([row["mips"] for row in per_workload.values()])
    return {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "workers": 3,
        "repeats": repeats,
        "per_workload": per_workload,
        "geomean_mips": round(geomean, 4),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(f"host throughput ({result['mode']}, scale={result['scale']}):")
    for name, row in result["per_workload"].items():
        replay = row.get("replay_mips")
        replay_col = f"  replay {replay:.3f} MIPS" if replay is not None else ""
        print(
            f"  {name:<8} native {row['native_mips']:.3f} MIPS"
            f"  record {row['record_mips']:.3f} MIPS"
            f"{replay_col}"
            f"  score {row['mips']:.3f}"
        )
    print(f"  GEOMEAN {result['geomean_mips']:.3f} guest-MIPS")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale, 1 repeat")
    parser.add_argument(
        "--write", choices=("seed", "optimized"), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if geomean regresses vs the committed optimized numbers",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    result = run_suite(quick=args.quick, repeats=repeats)
    _print_suite(result)

    results = _load_results()
    if args.write:
        bucket = results.setdefault(args.write, {})
        bucket[result["mode"]] = result
        seed = results.get("seed", {}).get(result["mode"])
        optimized = results.get("optimized", {}).get(result["mode"])
        if seed and optimized:
            results["speedup_" + result["mode"]] = round(
                optimized["geomean_mips"] / seed["geomean_mips"], 3
            )
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print("check: no committed optimized numbers for this mode", file=sys.stderr)
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
        floor = committed["geomean_mips"] * (1.0 - tolerance)
        status = "ok" if result["geomean_mips"] >= floor else "REGRESSION"
        print(
            f"check: measured {result['geomean_mips']:.3f} vs committed "
            f"{committed['geomean_mips']:.3f} (floor {floor:.3f}) → {status}"
        )
        if status != "ok":
            return 1
        seed = results.get("seed", {}).get(result["mode"])
        if seed:
            speedup_floor = float(os.environ.get("SEED_SPEEDUP_FLOOR", "1.5"))
            seed_floor = seed["geomean_mips"] * speedup_floor
            ratio = result["geomean_mips"] / seed["geomean_mips"]
            status = "ok" if result["geomean_mips"] >= seed_floor else "BELOW FLOOR"
            print(
                f"check: measured {result['geomean_mips']:.3f} is "
                f"{ratio:.2f}x the seed baseline "
                f"{seed['geomean_mips']:.3f} (required ≥{speedup_floor:.1f}x)"
                f" → {status}"
            )
            if status != "ok":
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
