"""Observability overhead benchmark: what tracing costs when it's off.

The observability layer (``repro.obs``) promises that *disabled means
free*: with no ``--trace`` flag the only new work on the record path is
a handful of epoch-granularity counter increments and one module-global
``is None`` check per span site. This bench measures that promise as
record-mode guest-MIPS in three modes:

* **baseline** — every obs hook stubbed to a no-op (counter adds, span
  context managers, histogram observes), approximating the
  pre-observability recorder;
* **disabled** — the shipped default: counters and latency histograms
  on, tracing and the event journal off;
* **enabled** — the full telemetry plane: a live tracer writing a
  Chrome trace plus an installed event journal with a JSON-lines sink,
  the worst case.

Two gates: disabled-mode geomean guest-MIPS may regress at most
``OBS_OVERHEAD_BUDGET`` (default 3%) and enabled mode at most
``OBS_ENABLED_BUDGET`` (default 6%) against the stubbed baseline
measured *in the same process on the same host* — comparing runs
seconds apart cancels the machine out of the measurement. ``--check``
additionally enforces the committed ``disabled`` numbers in
``BENCH_obs_overhead.json`` with the usual ``BENCH_TOLERANCE`` floor.

Usage::

    python benchmarks/bench_obs_overhead.py                 # measure + print
    python benchmarks/bench_obs_overhead.py --quick         # small scale
    python benchmarks/bench_obs_overhead.py --write committed
    python benchmarks/bench_obs_overhead.py --quick --check   # CI gate
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.obs import events as obs_events  # noqa: E402
from repro.obs import export as obs_export  # noqa: E402
from repro.obs import histo as obs_histo  # noqa: E402
from repro.obs import spans as obs_spans  # noqa: E402
from repro.obs.metrics import process_stats  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

WORKLOADS = ("pbzip", "fft", "apache")
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


@contextlib.contextmanager
def _stubbed_obs():
    """Neutralize every observability hook — the pre-obs baseline."""
    registry = process_stats()
    original_add = registry.add
    original_span = obs_spans.span

    @contextlib.contextmanager
    def _null_span(name, cat, **args):
        yield

    registry.add = lambda *args, **kwargs: None
    obs_spans.span = _null_span
    previous_histo = obs_histo.set_enabled(False)
    try:
        yield
    finally:
        registry.add = original_add
        obs_spans.span = original_span
        obs_histo.set_enabled(previous_histo)


def _record_mips(instance, machine, config, retired: int) -> float:
    start = time.perf_counter()
    DoublePlayRecorder(instance.image, instance.setup, config).record()
    return retired / (time.perf_counter() - start) / 1e6


def measure_workload(name: str, scale: int, repeats: int, workers: int = 3):
    """Best-of-``repeats`` record-mode guest-MIPS in all three modes.

    The modes run interleaved inside each repeat so slow host drift
    (thermal, noisy neighbours) hits all three equally.
    """
    machine = MachineConfig(cores=workers)
    best = {"baseline": 0.0, "disabled": 0.0, "enabled": 0.0}
    retired = 0
    for _ in range(repeats):
        instance = build_workload(name, workers=workers, scale=scale, seed=1)
        native = run_native(instance.image, instance.setup, machine)
        retired = sum(ctx.retired for ctx in native.engine.contexts.values())
        config = DoublePlayConfig(
            machine=machine,
            epoch_cycles=max(native.duration // 18, 500),
        )
        if not best["baseline"]:
            # Warm-up: the first record pass pays interpreter-cache and
            # allocator warm-up that would otherwise be billed entirely
            # to whichever mode runs first.
            _record_mips(instance, machine, config, retired)

        with _stubbed_obs():
            best["baseline"] = max(
                best["baseline"], _record_mips(instance, machine, config, retired)
            )
        best["disabled"] = max(
            best["disabled"], _record_mips(instance, machine, config, retired)
        )
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, "trace.json")
            events_path = os.path.join(tmp, "events.jsonl")
            obs_events.install_journal(sink_path=events_path)
            obs_spans.start_trace(trace_path)
            try:
                mips = _record_mips(instance, machine, config, retired)
            finally:
                tracer = obs_spans.stop_trace()
                obs_events.uninstall_journal()
            obs_export.write_chrome_trace(tracer, trace_path)
            best["enabled"] = max(best["enabled"], mips)
    return {
        "retired_ops": retired,
        "baseline_mips": round(best["baseline"], 4),
        "disabled_mips": round(best["disabled"], 4),
        "enabled_mips": round(best["enabled"], 4),
        "disabled_overhead": round(1.0 - best["disabled"] / best["baseline"], 4),
        "enabled_overhead": round(1.0 - best["enabled"] / best["baseline"], 4),
    }


def run_suite(quick: bool, repeats: int):
    scale = 8 if quick else 24
    per_workload = {}
    for name in WORKLOADS:
        per_workload[name] = measure_workload(name, scale=scale, repeats=repeats)
    baseline = _geomean([r["baseline_mips"] for r in per_workload.values()])
    disabled = _geomean([r["disabled_mips"] for r in per_workload.values()])
    enabled = _geomean([r["enabled_mips"] for r in per_workload.values()])
    return {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "workers": 3,
        "repeats": repeats,
        "per_workload": per_workload,
        "geomean_baseline_mips": round(baseline, 4),
        "geomean_disabled_mips": round(disabled, 4),
        "geomean_enabled_mips": round(enabled, 4),
        "geomean_disabled_overhead": round(1.0 - disabled / baseline, 4),
        "geomean_enabled_overhead": round(1.0 - enabled / baseline, 4),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(f"observability overhead ({result['mode']}, scale={result['scale']}):")
    for name, row in result["per_workload"].items():
        print(
            f"  {name:<8} baseline {row['baseline_mips']:.3f}"
            f"  disabled {row['disabled_mips']:.3f}"
            f" ({row['disabled_overhead']:+.1%})"
            f"  enabled {row['enabled_mips']:.3f}"
            f" ({row['enabled_overhead']:+.1%})"
        )
    print(
        f"  GEOMEAN disabled overhead "
        f"{result['geomean_disabled_overhead']:+.1%}, enabled "
        f"{result['geomean_enabled_overhead']:+.1%}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale")
    parser.add_argument(
        "--write", choices=("committed",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if disabled-mode overhead exceeds the budget, or if "
        "disabled-mode MIPS regresses vs the committed numbers",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.quick else 3)
    result = run_suite(quick=args.quick, repeats=repeats)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        failed = False
        # Hard budget: disabled mode vs the same-process stubbed baseline.
        budget = float(os.environ.get("OBS_OVERHEAD_BUDGET", "0.03"))
        overhead = result["geomean_disabled_overhead"]
        status = "ok" if overhead <= budget else "OVER BUDGET"
        print(
            f"check: disabled-mode overhead {overhead:+.2%} vs budget "
            f"{budget:.0%} → {status}"
        )
        failed |= status != "ok"
        # Full-telemetry budget: tracer + journal + histograms live.
        enabled_budget = float(os.environ.get("OBS_ENABLED_BUDGET", "0.06"))
        enabled_overhead = result["geomean_enabled_overhead"]
        status = "ok" if enabled_overhead <= enabled_budget else "OVER BUDGET"
        print(
            f"check: enabled-mode overhead {enabled_overhead:+.2%} vs budget "
            f"{enabled_budget:.0%} → {status}"
        )
        failed |= status != "ok"
        # Drift floor: disabled MIPS vs the committed numbers.
        committed = results.get("committed", {}).get(result["mode"])
        if committed:
            tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
            floor = committed["geomean_disabled_mips"] * (1.0 - tolerance)
            status = (
                "ok" if result["geomean_disabled_mips"] >= floor else "REGRESSION"
            )
            print(
                f"check: disabled {result['geomean_disabled_mips']:.3f} vs "
                f"committed {committed['geomean_disabled_mips']:.3f} "
                f"(floor {floor:.3f}) → {status}"
            )
            failed |= status != "ok"
        else:
            print("check: no committed numbers for this mode", file=sys.stderr)
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
