"""Record-as-a-service benchmark: throughput, latency, fleet dedup.

Three measurements over :class:`repro.service.RecordService`:

* **Session throughput** — sessions/sec and p99 epoch-unit latency for
  10 / 100 / 1000 concurrent sessions (quick mode: 10 / 50) of an
  identical small workload over one shared fleet, plus admission-wait
  percentiles. One epoch-cycles value is precomputed and passed to
  every request so the benchmark measures the service, not N native
  calibration runs.
* **Jobs sweep** — sessions/sec at fleet sizes 1 and 2 for a fixed
  session count. On a single-CPU container the measured speedup is
  bounded by the box (the fleet's workers share one core), so the
  committed numbers carry ``host_cpu_count`` and the CI gate tracks
  throughput at the committed fleet size rather than the speedup.
* **Cross-session dedup** — total bytes shipped to workers for K
  identical tenants through one warm fleet versus the cold baseline
  (pool + cache tracker torn down between sessions, so every tenant
  re-ships its pages). ``shipped_reduction`` is cold/warm — the factor
  the fleet-wide blob cache cuts off the wire.

Every thoughput run also verifies the determinism contract: each
session's recording must be bit-identical to a solo ``jobs=1`` run.

Results land in ``BENCH_sessions.json`` at the repo root.

Usage::

    python benchmarks/bench_sessions.py            # full (10/100/1000)
    python benchmarks/bench_sessions.py --quick
    python benchmarks/bench_sessions.py --write optimized
    python benchmarks/bench_sessions.py --quick --check  # CI gate

``--check`` fails (exit 1) when headline sessions/sec drops more than
``BENCH_TOLERANCE`` (default 0.25) below the committed number, when the
dedup reduction falls under ``DEDUP_FLOOR``, or when any recording
drifts from the solo run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder  # noqa: E402
from repro.host.pool import shutdown_shared_pool  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.service import (  # noqa: E402
    RecordService,
    ServiceConfig,
    SessionRequest,
)
from repro.workloads import build_workload  # noqa: E402

WORKLOAD = ("fft", 2, 1, 7)  # name, workers, scale, seed
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sessions.json"
#: the warm fleet must cut shipped bytes by at least this factor on
#: identical tenants (the cold baseline re-ships every page per session)
DEDUP_FLOOR = 1.5


def _calibrate():
    """One native run: the epoch length every session reuses."""
    name, workers, scale, seed = WORKLOAD
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    machine = MachineConfig(cores=workers)
    native = run_native(instance.image, instance.setup, machine)
    return max(native.duration // 12, 500)


def _solo_canonical(epoch_cycles: int) -> str:
    name, workers, scale, seed = WORKLOAD
    instance = build_workload(name, workers=workers, scale=scale, seed=seed)
    config = DoublePlayConfig(
        machine=MachineConfig(cores=workers),
        epoch_cycles=epoch_cycles,
        host_jobs=1,
    )
    result = DoublePlayRecorder(instance.image, instance.setup, config).record()
    return json.dumps(result.recording.to_plain(), sort_keys=True)


def _requests(count: int, epoch_cycles: int):
    name, workers, scale, seed = WORKLOAD
    return [
        SessionRequest(
            sid=f"s{i}", workload=name, workers=workers, scale=scale,
            seed=seed, epoch_cycles=epoch_cycles,
        )
        for i in range(count)
    ]


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def measure_throughput(count: int, jobs: int, epoch_cycles: int,
                       canonical: str):
    service = RecordService(ServiceConfig(jobs=jobs, max_active=8))
    report = service.run(_requests(count, epoch_cycles))
    assert report.ok, [r.error for r in report.results if not r.ok][:3]
    drifted = sum(
        1 for r in report.results
        if json.dumps(r.recording_plain, sort_keys=True) != canonical
    )
    waits = sorted(r.admission_wait for r in report.results)
    fleet = report.fleet
    return {
        "sessions": count,
        "jobs": jobs,
        "elapsed_s": round(report.elapsed, 3),
        "sessions_per_sec": round(report.sessions_per_sec(), 2),
        "p50_unit_ms": round(fleet["unit_latency_p50"] * 1e3, 3),
        "p99_unit_ms": round(fleet["unit_latency_p99"] * 1e3, 3),
        "p50_admission_ms": round(_percentile(waits, 0.50) * 1e3, 3),
        "p99_admission_ms": round(_percentile(waits, 0.99) * 1e3, 3),
        "queue_high_water": fleet["queue_high_water"],
        "fair_share_deficits": fleet["fair_share_deficits"],
        "units": fleet["units"],
        "drifted_recordings": drifted,
    }


def measure_dedup(tenants: int, jobs: int, epoch_cycles: int):
    """Cold (per-session pool + tracker) vs warm (one fleet) wire bytes."""
    cold_bytes = 0
    for i in range(tenants):
        shutdown_shared_pool()  # every tenant faces a cold fleet
        service = RecordService(ServiceConfig(jobs=jobs, max_active=1))
        report = service.run(_requests(1, epoch_cycles))
        assert report.ok, [r.error for r in report.results]
        cold_bytes += report.fleet["wire"]["bytes_shipped"]

    # One cold start, then every tenant shares the fleet. max_active=1
    # serializes the tenants: dedup needs an earlier tenant's pages to be
    # acked into the tracker before a later tenant dispatches — racing
    # identical dispatches legitimately all ship (and are then dropped by
    # the worker caches), which is a concurrency artifact, not dedup.
    shutdown_shared_pool()
    service = RecordService(ServiceConfig(jobs=jobs, max_active=1))
    report = service.run(_requests(tenants, epoch_cycles))
    assert report.ok, [r.error for r in report.results]
    warm = report.fleet["wire"]
    return {
        "tenants": tenants,
        "cold_bytes_shipped": cold_bytes,
        "warm_bytes_shipped": warm["bytes_shipped"],
        "shipped_reduction": round(
            cold_bytes / max(warm["bytes_shipped"], 1), 3
        ),
        "cross_session_hits": warm["cross_session_hits"],
        "cross_session_bytes_saved": warm["cross_session_bytes_saved"],
    }


def run_suite(quick: bool):
    counts = (10, 50) if quick else (10, 100, 1000)
    jobs_sweep = (1, 2)
    fleet_jobs = 2
    epoch_cycles = _calibrate()
    canonical = _solo_canonical(epoch_cycles)

    shutdown_shared_pool()
    throughput = [
        measure_throughput(count, fleet_jobs, epoch_cycles, canonical)
        for count in counts
    ]
    sweep_count = counts[1] if len(counts) > 1 else counts[0]
    by_jobs = {}
    for jobs in jobs_sweep:
        shutdown_shared_pool()  # size the fleet exactly, no carry-over
        by_jobs[str(jobs)] = measure_throughput(
            sweep_count, jobs, epoch_cycles, canonical
        )
    dedup = measure_dedup(
        tenants=4 if quick else 8, jobs=fleet_jobs, epoch_cycles=epoch_cycles
    )
    shutdown_shared_pool()

    headline = throughput[-1]
    return {
        "mode": "quick" if quick else "full",
        "workload": dict(zip(("name", "workers", "scale", "seed"), WORKLOAD)),
        "epoch_cycles": epoch_cycles,
        "host_cpu_count": os.cpu_count() or 1,
        "fleet_jobs": fleet_jobs,
        "throughput": throughput,
        "by_jobs": by_jobs,
        "dedup": dedup,
        "headline_sessions_per_sec": headline["sessions_per_sec"],
        "headline_p99_unit_ms": headline["p99_unit_ms"],
        "parity_ok": all(t["drifted_recordings"] == 0 for t in throughput),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(
        f"sessions ({result['mode']}, fleet jobs={result['fleet_jobs']}, "
        f"{result['host_cpu_count']} cpu):"
    )
    for row in result["throughput"]:
        print(
            f"  {row['sessions']:>4} sessions: "
            f"{row['sessions_per_sec']:>7.2f}/s, unit p99 "
            f"{row['p99_unit_ms']:.1f}ms, admission p99 "
            f"{row['p99_admission_ms']:.0f}ms, deficits "
            f"{row['fair_share_deficits']}, drift {row['drifted_recordings']}"
        )
    for jobs, row in sorted(result["by_jobs"].items()):
        print(
            f"  jobs={jobs}: {row['sessions_per_sec']:>7.2f}/s "
            f"({row['sessions']} sessions)"
        )
    dedup = result["dedup"]
    print(
        f"  dedup: {dedup['tenants']} identical tenants shipped "
        f"{dedup['warm_bytes_shipped']}B warm vs "
        f"{dedup['cold_bytes_shipped']}B cold → "
        f"{dedup['shipped_reduction']:.2f}x reduction "
        f"({dedup['cross_session_bytes_saved']}B attributed to "
        f"{dedup['cross_session_hits']} cross-session hits)"
    )
    print(
        f"  HEADLINE {result['headline_sessions_per_sec']:.2f} sessions/s, "
        f"p99 unit {result['headline_p99_unit_ms']:.1f}ms, parity "
        f"{'ok' if result['parity_ok'] else 'FAILED'}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small counts")
    parser.add_argument(
        "--write", choices=("optimized",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on throughput/dedup/parity regression vs committed",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print(
                "check: no committed optimized numbers for this mode",
                file=sys.stderr,
            )
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))
        floor = committed["headline_sessions_per_sec"] * (1.0 - tolerance)
        failures = []
        if result["headline_sessions_per_sec"] < floor:
            failures.append(
                f"throughput {result['headline_sessions_per_sec']:.2f}/s "
                f"below floor {floor:.2f}/s "
                f"(committed {committed['headline_sessions_per_sec']:.2f}/s)"
            )
        if result["dedup"]["shipped_reduction"] < DEDUP_FLOOR:
            failures.append(
                f"dedup reduction {result['dedup']['shipped_reduction']:.2f}x "
                f"under floor {DEDUP_FLOOR:.1f}x"
            )
        if not result["parity_ok"]:
            failures.append("recordings drifted from solo jobs=1")
        status = "ok" if not failures else "REGRESSION"
        print(f"check: {status}" + "".join(f"\n  {f}" for f in failures))
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
