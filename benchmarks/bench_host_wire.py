"""Content-addressed wire benchmark: shipped bytes per host fan-out.

The host layer no longer pickles whole checkpoints into every work unit.
Units are skeletons (contexts + per-space ``{page_no: digest}`` tables)
referencing content-addressed blobs; workers keep LRU caches of decoded
blobs and the coordinator ships only what the pool is not already
believed to hold. This bench pins the byte reduction on the replay
fan-out (the steady-state path — every epoch starts from a previously
shipped checkpoint) for two multi-epoch workloads:

* ``baseline_bytes`` — what the pre-wire protocol shipped: one pickle
  per unit of the whole payload (program image, machine config, fully
  hydrated start checkpoint with page contents, schedule/targets, and
  that unit's sliced logs);
* ``cold_bytes`` — the content-addressed dispatches for a worker that
  holds nothing: per-unit skeleton plus each blob the first time it is
  needed (intra-batch dedup only);
* ``steady_bytes`` — the dispatches once the pool holds every blob:
  skeletons alone. This is what a warm pool pays per fan-out, and the
  number the ≥5× gate compares against the baseline.

All three are exact ``len(pickle.dumps(...))`` measurements over the
real dispatch objects — nothing is estimated. A measured section runs
the actual pool (record at ``jobs=4``, then two replays) and reports the
executor's own wire accounting (``host["wire"]``), demonstrating the
cold → warm decay end to end; its totals depend on worker scheduling,
so the gate uses the deterministic single-worker model above.

Results are written to ``BENCH_host_wire.json`` at the repo root.

Usage::

    python benchmarks/bench_host_wire.py                # measure + print
    python benchmarks/bench_host_wire.py --quick        # small scale
    python benchmarks/bench_host_wire.py --write optimized
    python benchmarks/bench_host_wire.py --quick --check  # CI gate

``--check`` fails (exit 1) if the steady-state reduction factor falls
below the 5.0× floor the wire protocol promises, or more than
``BENCH_TOLERANCE`` (default 20%) below the committed numbers.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer  # noqa: E402
from repro.host.pool import UnitDispatch, shutdown_shared_pool  # noqa: E402
from repro.host.wire import (  # noqa: E402
    replay_units_for_recording,
    signal_slice,
    syscall_slice,
)
from repro.machine.config import MachineConfig  # noqa: E402
from repro.memory.blob import blob_digest, encode_object  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

WORKLOADS = ("pbzip", "fft")
JOBS = 4
EPOCH_DIVISOR = 12
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_wire.json"
REDUCTION_FLOOR = 5.0  # steady-state shipped bytes vs whole-object pickles


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _baseline_bytes(program, machine, recording) -> int:
    """Whole-object dispatch cost of the pre-wire protocol, per unit."""
    total = 0
    for epoch in recording.epochs:
        start = epoch.start_checkpoint
        payload = (
            program,
            machine,
            start,
            epoch.targets,
            epoch.schedule,
            epoch.sync_log.events,
            syscall_slice(recording.syscall_records, start),
            signal_slice(recording.signal_records, start),
            epoch.end_digest,
        )
        total += len(pickle.dumps(payload))
    return total


def _wire_bytes(program, machine, recording):
    """(cold, steady) dispatch bytes under the content-addressed wire."""
    batch = replay_units_for_recording(recording)
    program_blob = encode_object(program)
    program_digest = blob_digest(program_blob)
    blobs = dict(batch.blobs)
    blobs[program_digest] = program_blob

    cold = steady = 0
    held = set()  # one worker, receiving units in order, infinite cache
    for unit in batch.units:
        required = set(unit.required_digests())
        required.add(program_digest)
        ship = {d: blobs[d] for d in required - held}
        held |= required
        cold += len(
            pickle.dumps(
                UnitDispatch(
                    machine=machine,
                    unit=unit,
                    program_digest=program_digest,
                    blobs=ship,
                )
            )
        )
        steady += len(
            pickle.dumps(
                UnitDispatch(
                    machine=machine,
                    unit=unit,
                    program_digest=program_digest,
                    blobs={},
                )
            )
        )
    return cold, steady


def measure_workload(name: str, scale: int, workers: int = 2):
    machine = MachineConfig(cores=workers)
    instance = build_workload(name, workers=workers, scale=scale, seed=1)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // EPOCH_DIVISOR, 500),
    )

    serial = DoublePlayRecorder(instance.image, instance.setup, config).record()
    recording = serial.recording

    baseline = _baseline_bytes(instance.image, machine, recording)
    cold, steady = _wire_bytes(instance.image, machine, recording)

    # Measured end to end: record through a fresh pool (cold caches),
    # then replay twice — the second replay rides the warm pool.
    shutdown_shared_pool()
    t0 = time.perf_counter()
    parallel = DoublePlayRecorder(
        instance.image, instance.setup, config.replace(host_jobs=JOBS)
    ).record()
    record_wall = time.perf_counter() - t0
    assert (
        parallel.recording.final_digest == recording.final_digest
    ), f"{name}: parallel record diverged"

    replayer = Replayer(instance.image, machine)
    measured = {"record": parallel.host["wire"]}
    for key in ("replay_cold", "replay_warm"):
        outcome = replayer.replay_parallel(recording, jobs=JOBS)
        assert outcome.verified, f"{name}: parallel replay failed"
        measured[key] = outcome.host["wire"]

    return {
        "epochs": recording.epoch_count(),
        "baseline_bytes": baseline,
        "cold_bytes": cold,
        "steady_bytes": steady,
        "reduction_cold": round(baseline / cold, 3),
        "reduction_steady": round(baseline / steady, 3),
        "record_jobs4_wall_ms": round(record_wall * 1e3, 3),
        "measured": {
            phase: {
                "bytes_shipped": stats["bytes_shipped"],
                "blobs_sent": stats["blobs_sent"],
                "blob_cache_hits": stats["blob_cache_hits"],
                "blob_resends": stats["blob_resends"],
            }
            for phase, stats in measured.items()
        },
    }


def run_suite(quick: bool):
    scale = 8 if quick else 16
    per_workload = {}
    for name in WORKLOADS:
        per_workload[name] = measure_workload(name, scale=scale)
    shutdown_shared_pool()
    headline = _geomean(
        [row["reduction_steady"] for row in per_workload.values()]
    )
    return {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "jobs": JOBS,
        "host_cpu_count": os.cpu_count() or 1,
        "per_workload": per_workload,
        "reduction_cold_geomean": round(
            _geomean([row["reduction_cold"] for row in per_workload.values()]), 3
        ),
        "reduction_steady_geomean": round(headline, 3),
        "headline": round(headline, 3),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(
        f"host wire ({result['mode']}, scale={result['scale']}, "
        f"jobs={result['jobs']}):"
    )
    for name, row in result["per_workload"].items():
        warm = row["measured"]["replay_warm"]
        print(
            f"  {name:<8} {row['epochs']:>2} epochs"
            f"  baseline {row['baseline_bytes']:>9} B"
            f"  cold {row['cold_bytes']:>8} B ({row['reduction_cold']:.1f}x)"
            f"  steady {row['steady_bytes']:>7} B ({row['reduction_steady']:.1f}x)"
            f"  warm-replay measured {warm['bytes_shipped']} B, "
            f"{warm['blob_cache_hits']} hits"
        )
    print(
        f"  HEADLINE steady-state reduction {result['headline']:.1f}x"
        f"  (cold {result['reduction_cold_geomean']:.1f}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale")
    parser.add_argument(
        "--write", choices=("optimized",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the reduction regresses vs committed numbers or the 5x floor",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print("check: no committed optimized numbers for this mode", file=sys.stderr)
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
        floor = max(committed["headline"] * (1.0 - tolerance), REDUCTION_FLOOR)
        status = "ok" if result["headline"] >= floor else "REGRESSION"
        print(
            f"check: steady reduction {result['headline']:.1f}x vs committed "
            f"{committed['headline']:.1f}x (floor {floor:.1f}x) → {status}"
        )
        if status != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
