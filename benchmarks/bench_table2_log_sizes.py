"""Table 2 — log sizes.

DoublePlay's log decomposes into the tiny uniprocessor schedule log, the
sync acquisition order, and the syscall log (dominated by input data).
For contrast the table includes what CREW page-ownership recording and
value logging would write for the same executions — the paper's point is
that uniparallel logs are orders of magnitude smaller on sharing-heavy
programs. ``disk_shards`` is what the durable sharded log actually
writes for the same events (compressed segment bytes, default codec),
so the comparison covers the on-disk format too.

Run: pytest benchmarks/bench_table2_log_sizes.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = [
    "workload",
    "schedule",
    "sync",
    "syscall",
    "dp_total",
    "disk_shards",
    "per_mcycle",
    "crew",
    "value_log",
]


def test_table2_log_sizes(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.log_size_experiment(workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Table 2: log sizes (DoublePlay vs baselines)"))
    for row in rows:
        assert row["dp_total_raw"] > 0
        assert row["disk_shards_raw"] > 0
    # value logging dwarfs DoublePlay's log on the sharing-heavy kernels
    sharing_heavy = [r for r in rows if r["workload"] in ("water", "ocean", "fft")]
    assert sharing_heavy
    for row in sharing_heavy:
        assert row["value_log_raw"] > row["dp_total_raw"]
