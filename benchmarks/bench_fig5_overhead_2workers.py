"""Fig 5 — DoublePlay logging overhead with spare cores, 2 worker threads.

Paper anchor (from the abstract): average logging overhead ~15% with two
worker threads given spare cores. The bench reproduces the per-workload
bars and the geometric mean; the shape requirement is a modest geomean
(well under 2x) that the W=4 variant (Fig 6) exceeds.

Run: pytest benchmarks/bench_fig5_overhead_2workers.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "native", "makespan", "overhead", "epochs", "divergences"]


def test_fig5_overhead_two_workers(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.overhead_experiment(workers=2, spare_cores=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Fig 5: logging overhead, W=2, spare cores (paper: ~15% avg)"))
    geomean = rows[-1]["overhead_raw"]
    assert 0.0 < geomean < 0.40, f"geomean overhead {geomean:.1%} out of band"
    # with sync hints, the race-free suite must not diverge
    assert all(row.get("divergences", 0) == 0 for row in rows[:-1])
