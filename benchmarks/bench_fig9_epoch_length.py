"""Fig 9 — epoch-length sensitivity.

Short epochs commit sooner and bound rollback, but pay checkpoint overhead
per epoch; very long epochs pay a deep pipeline drain (the final epoch's
serialised re-execution). Overhead is minimised in between — the sweep
shows the U-ish curve and that log size shrinks as epochs lengthen.

Run: pytest benchmarks/bench_fig9_epoch_length.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "epoch_cycles", "epochs", "overhead", "log_bytes"]


def test_fig9_epoch_length_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.epoch_length_experiment(name="pbzip", workers=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Fig 9: overhead vs epoch length (pbzip, W=2)"))
    assert len(rows) >= 4
    shortest = rows[0]   # divisor 4 -> longest epochs
    longest_div = rows[-1]  # largest divisor -> shortest epochs
    assert shortest["epochs"] < longest_div["epochs"]
    # the extremes are both worse than the best point in between
    best = min(row["overhead_raw"] for row in rows)
    assert max(rows[0]["overhead_raw"], rows[-1]["overhead_raw"]) > best
