"""Table 1 — workload characteristics.

Regenerates the paper's benchmark-description table: threads, instruction
counts, syscalls, synchronisation operations, pages shared between
threads, and detected data races for every workload in the suite.

Run: pytest benchmarks/bench_table1_workloads.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = [
    "workload",
    "category",
    "threads",
    "instructions",
    "cycles",
    "syscalls",
    "sync_ops",
    "shared_pages",
    "races",
]


def test_table1_workload_characteristics(benchmark):
    rows = benchmark.pedantic(
        lambda: experiments.workload_characteristics(workers=2, scale=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, COLUMNS, title="Table 1: workload characteristics"))
    by_name = {row["workload"]: row for row in rows}
    # the racy micros race; the paper-suite workloads do not
    assert by_name["racy-counter"]["races"] >= 1
    assert by_name["racy-lazyinit"]["races"] >= 1
    for name in ("pbzip", "pfscan", "aget", "apache", "mysql",
                 "fft", "lu", "ocean", "radix", "water"):
        assert by_name[name]["races"] == 0, name
    # every workload is multithreaded and does real work
    for row in rows:
        assert row["threads"] >= 3
        assert row["instructions"] > 100
