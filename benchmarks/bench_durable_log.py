"""Durable sharded log benchmark: throughput, record overhead, replay latency.

Four measurements per workload, all wall-clock (min over repeats, fsync
disabled so the numbers are CPU/IO-path cost, not device sync latency):

* ``persist_speedup`` — bytes/sec persisting a finished recording
  through the sharded writer (per-thread shards, group-committed
  compressed blocks, content-addressed blob pack) versus the
  **single-stream baseline**: one whole-object pickle per epoch —
  start checkpoint included, no content addressing — appended to one
  flushed stream, the naive durable log the sharded design replaces.
  Both persist the same logical log, so the speedup is the inverse
  wall-time ratio (paired-ratio median, like the overhead section).
  The committed full-mode headline must stay ≥ 2×.
* ``record_overhead`` — wall time of ``record`` with the durable sink
  streaming + spilling (``log_dir`` + ``log_spill``) over plain
  in-memory recording, at a fixed scale (16) in both modes so the
  sink's fixed costs amortize identically. Estimator: alternate the
  two configs pairwise and take the median of the per-pair ratios —
  robust to the CPU-frequency drift that wrecks min-of-N on shared
  boxes. CI gates the suite geomean at the 15% ceiling (with the
  regression tolerance on top; see ``--check``).
* ``resident`` — resident log bytes after a ``jobs=4`` spill run
  (must be 0: flight-recorder mode) against the in-memory recording's
  resident bytes, plus the group-commit buffer's high-water mark — the
  quantity that bounds durable-record memory by pipeline depth.
* ``replay_from_epoch`` — cold-start wall time of ``load + replay``
  from epoch N for N ∈ {0, mid, late}: suffix loads decompress only
  suffix blocks and replay only ``total - N`` epochs, so latency must
  shrink monotonically (≈ linearly) in N.

A codec A/B (raw / zlib1 / zlib6) persists the same recordings under
each codec and reports wall time and on-disk bytes; pbzip stands in for
the page/syscall-heavy shard mix, apache for the sync-heavy one. The
measured default lives in EXPERIMENTS.md.

Results are written to ``BENCH_durable_log.json`` at the repo root.

Usage::

    python benchmarks/bench_durable_log.py                # measure + print
    python benchmarks/bench_durable_log.py --quick        # small scale
    python benchmarks/bench_durable_log.py --write optimized
    python benchmarks/bench_durable_log.py --quick --check  # CI gate

``--check`` fails (exit 1) if record overhead exceeds
``max(15%, committed * (1 + BENCH_TOLERANCE))`` — the 15% ceiling is
the absolute bar, the tolerance absorbs shared-box noise around the
committed measurement — or if the persist speedup falls more than
``BENCH_TOLERANCE`` (default 20%) below the committed numbers (and, in
full mode, below the 2.0× floor).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# Measure the write path, not the device: group commit still batches,
# the OS just never blocks on a sync.
os.environ.setdefault("REPRO_LOG_FSYNC", "0")

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer  # noqa: E402
from repro.host.pool import shutdown_shared_pool  # noqa: E402
from repro.host.wire import signal_slice, syscall_slice  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.record.shards import (  # noqa: E402
    ShardedLogReader,
    persist_recording,
)
from repro.workloads import build_workload  # noqa: E402

#: pbzip: page/syscall-heavy shards; apache: sync-heavy shards
WORKLOADS = ("pbzip", "apache")
CODECS = ("raw", "zlib1", "zlib6")
JOBS = 4
EPOCH_DIVISOR = 12
#: record overhead is measured at this scale in BOTH modes: on runs much
#: shorter than this the sink's fixed per-run costs (directory setup,
#: manifest commit, final flush) dominate the ratio and say nothing
#: about steady-state logging tax
OVERHEAD_SCALE = 16
OVERHEAD_PAIRS = 9
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_durable_log.json"
SPEEDUP_FLOOR = 2.0  # sharded persist vs single-stream baseline, full mode
OVERHEAD_CEILING = 0.15  # durable+spill record vs in-memory record


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _min_wall(repeats, fn):
    walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _baseline_stream(recording, path) -> int:
    """The single-stream durable baseline: whole-object epoch pickles.

    One append stream, flushed per epoch; every record carries its full
    start checkpoint because nothing dedupes pages across epochs. This
    is the durable analogue of the pre-wire dispatch baseline in
    bench_host_wire.py.
    """
    total = 0
    with open(path, "wb") as handle:
        for epoch in recording.epochs:
            start = epoch.start_checkpoint
            payload = pickle.dumps(
                (
                    start,
                    epoch.targets,
                    epoch.schedule,
                    epoch.sync_log.events,
                    syscall_slice(recording.syscall_records, start),
                    signal_slice(recording.signal_records, start),
                    epoch.end_digest,
                    epoch.duration,
                ),
                protocol=4,
            )
            handle.write(len(payload).to_bytes(4, "little"))
            handle.write(payload)
            handle.flush()
            total += len(payload)
    return total


def measure_workload(name: str, scale: int, repeats: int, workdir: str):
    machine = MachineConfig(cores=2)
    instance = build_workload(name, workers=2, scale=scale, seed=1)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // EPOCH_DIVISOR, 500),
    )
    recording = DoublePlayRecorder(
        instance.image, instance.setup, config
    ).record().recording
    raw_bytes = recording.total_log_bytes()

    # -- persistence throughput: sharded vs single-stream baseline ------
    # Same paired-ratio-median estimator as the overhead section:
    # alternate the two writers, take the median per-pair ratio.
    stream_path = os.path.join(workdir, f"{name}.stream")
    shard_dir = os.path.join(workdir, f"{name}-shards")

    def _persist(codec=None):
        # The tree teardown happens outside every timed window — the
        # baseline overwrites one file, so unlink traffic would bill
        # filesystem bookkeeping to the sharded writer only.
        shutil.rmtree(shard_dir, ignore_errors=True)
        return persist_recording(recording, shard_dir, codec=codec, fsync=False)

    baseline_bytes = _baseline_stream(recording, stream_path)  # warm
    _persist()
    ratios = []
    baseline_walls = []
    shard_walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        _baseline_stream(recording, stream_path)
        baseline_walls.append(time.perf_counter() - start)
        shutil.rmtree(shard_dir, ignore_errors=True)
        start = time.perf_counter()
        persist_recording(recording, shard_dir, fsync=False)
        shard_walls.append(time.perf_counter() - start)
        ratios.append(baseline_walls[-1] / shard_walls[-1])
    ratios.sort()
    speedup = ratios[len(ratios) // 2]
    baseline_wall = min(baseline_walls)
    shard_wall = min(shard_walls)
    totals = _persist()

    # -- codec A/B on the same recording --------------------------------
    codecs = {}
    for codec in CODECS:

        def _persist_codec(codec=codec):
            shutil.rmtree(shard_dir, ignore_errors=True)
            start = time.perf_counter()
            persist_recording(recording, shard_dir, codec=codec, fsync=False)
            return time.perf_counter() - start

        wall = min(
            _persist_codec() for _ in range(max(2, repeats // 2))
        )
        ctotals = _persist(codec)
        codecs[codec] = {
            "wall_ms": round(wall * 1e3, 3),
            "segment_bytes": ctotals["segment_bytes"],
            "blob_bytes": ctotals["blob_bytes"],
        }
    raw_segment = codecs["raw"]["segment_bytes"]
    for codec in CODECS:
        codecs[codec]["ratio"] = round(
            raw_segment / codecs[codec]["segment_bytes"], 3
        )

    # -- resident log memory at jobs=4 (flight-recorder bound) ----------
    def _record(overrides=None):
        cfg = config.replace(**overrides) if overrides else config
        return DoublePlayRecorder(instance.image, instance.setup, cfg).record()

    rec_dir = os.path.join(workdir, f"{name}-rec")
    shutdown_shared_pool()
    spilled = _record(
        {"log_dir": rec_dir + "-j4", "log_spill": True, "host_jobs": JOBS}
    )
    shutdown_shared_pool()
    durable_counters = spilled.metrics.snapshot().get("durable", {})
    resident = {
        "in_memory_bytes": recording.resident_log_bytes(),
        "spilled_bytes": spilled.recording.resident_log_bytes(),
        "group_commit_buffer_peak": durable_counters.get("buffered_peak", 0),
        "group_commits": durable_counters.get("group_commits", 0),
    }
    assert (
        spilled.recording.final_digest == recording.final_digest
    ), f"{name}: durable jobs={JOBS} record diverged"

    # -- incremental replay: cold start from epoch N --------------------
    replay_dir = os.path.join(workdir, f"{name}-replay")
    shutil.rmtree(replay_dir, ignore_errors=True)
    persist_recording(recording, replay_dir, fsync=False)
    total = recording.epoch_count()
    replayer = Replayer(instance.image, machine)
    replay_rows = []
    for from_epoch in sorted({0, total // 2, (3 * total) // 4}):
        def _cold_replay():
            suffix = ShardedLogReader(replay_dir).load_recording(
                from_epoch=from_epoch
            )
            outcome = replayer.replay_sequential(suffix)
            assert outcome.verified, f"{name}@{from_epoch}: {outcome.details}"
            return outcome

        wall = _min_wall(max(2, repeats // 2), _cold_replay)
        outcome = _cold_replay()
        replay_rows.append(
            {
                "from_epoch": from_epoch,
                "epochs_replayed": outcome.epochs_replayed,
                "wall_ms": round(wall * 1e3, 3),
                "replay_cycles": outcome.total_cycles,
            }
        )
    assert all(
        earlier["wall_ms"] > later["wall_ms"] * 0.95
        for earlier, later in zip(replay_rows, replay_rows[1:])
    ), f"{name}: suffix replay latency did not shrink with from_epoch"

    return {
        "epochs": total,
        "log_bytes": raw_bytes,
        "baseline_bytes": baseline_bytes,
        "on_disk_bytes": totals["segment_bytes"] + totals["blob_bytes"],
        "baseline_wall_ms": round(baseline_wall * 1e3, 3),
        "sharded_wall_ms": round(shard_wall * 1e3, 3),
        "persist_speedup": round(speedup, 3),
        "log_bytes_per_sec": {
            "baseline": int(raw_bytes / baseline_wall),
            "sharded": int(raw_bytes / shard_wall),
        },
        "resident": resident,
        "codecs": codecs,
        "replay_from_epoch": replay_rows,
    }


def measure_overhead(name: str, workdir: str):
    """Durable+spill record wall over in-memory record wall.

    Alternates the two configs and reports the median of per-pair
    ratios: pairing cancels the slow CPU-frequency drift between
    adjacent runs, the median discards the occasional noise spike that
    contaminates any single pair.
    """
    machine = MachineConfig(cores=2)
    instance = build_workload(name, workers=2, scale=OVERHEAD_SCALE, seed=1)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // EPOCH_DIVISOR, 500),
    )
    log_dir = os.path.join(workdir, f"{name}-overhead")

    def _record(overrides=None):
        cfg = config.replace(**overrides) if overrides else config
        return DoublePlayRecorder(instance.image, instance.setup, cfg).record()

    _record()  # warm caches outside the timed pairs
    shutil.rmtree(log_dir, ignore_errors=True)
    _record({"log_dir": log_dir, "log_spill": True})
    ratios = []
    walls = {"in_memory": [], "durable_spill": []}
    for _ in range(OVERHEAD_PAIRS):
        start = time.perf_counter()
        _record()
        memory_wall = time.perf_counter() - start
        shutil.rmtree(log_dir, ignore_errors=True)
        start = time.perf_counter()
        _record({"log_dir": log_dir, "log_spill": True})
        durable_wall = time.perf_counter() - start
        ratios.append(durable_wall / memory_wall)
        walls["in_memory"].append(memory_wall)
        walls["durable_spill"].append(durable_wall)
    shutil.rmtree(log_dir, ignore_errors=True)
    ratios.sort()
    return {
        "scale": OVERHEAD_SCALE,
        "pairs": OVERHEAD_PAIRS,
        "overhead": round(ratios[len(ratios) // 2] - 1.0, 4),
        "record_wall_ms": {
            key: round(min(values) * 1e3, 3) for key, values in walls.items()
        },
    }


def run_suite(quick: bool):
    scale = 8 if quick else 16
    repeats = 7 if quick else 9
    per_workload = {}
    workdir = tempfile.mkdtemp(prefix="bench-durable-")
    try:
        for name in WORKLOADS:
            per_workload[name] = measure_workload(
                name, scale=scale, repeats=repeats, workdir=workdir
            )
            per_workload[name]["record_overhead"] = measure_overhead(
                name, workdir
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    headline = _geomean(
        [row["persist_speedup"] for row in per_workload.values()]
    )
    overhead = (
        _geomean(
            [
                1.0 + row["record_overhead"]["overhead"]
                for row in per_workload.values()
            ]
        )
        - 1.0
    )
    return {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "jobs": JOBS,
        "repeats": repeats,
        "host_cpu_count": os.cpu_count() or 1,
        "per_workload": per_workload,
        "overhead": round(overhead, 4),
        "headline": round(headline, 3),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(
        f"durable log ({result['mode']}, scale={result['scale']}, "
        f"repeats={result['repeats']}):"
    )
    for name, row in result["per_workload"].items():
        print(
            f"  {name:<8} {row['epochs']:>2} epochs, {row['log_bytes']} log B"
            f"  persist {row['sharded_wall_ms']:.2f}ms vs stream "
            f"{row['baseline_wall_ms']:.2f}ms ({row['persist_speedup']:.2f}x)"
            f"  record overhead {row['record_overhead']['overhead']:+.1%}"
            f" @scale {row['record_overhead']['scale']}"
            f"  resident {row['resident']['spilled_bytes']} B spilled"
        )
        for entry in row["replay_from_epoch"]:
            print(
                f"           replay --from-epoch {entry['from_epoch']:>2}: "
                f"{entry['epochs_replayed']:>2} epochs in "
                f"{entry['wall_ms']:.2f}ms"
            )
        codecs = row["codecs"]
        print(
            "           codecs "
            + "  ".join(
                f"{codec}: {codecs[codec]['segment_bytes']}B "
                f"({codecs[codec]['ratio']:.2f}x) "
                f"{codecs[codec]['wall_ms']:.2f}ms"
                for codec in CODECS
            )
        )
    print(
        f"  HEADLINE persist speedup {result['headline']:.2f}x, "
        f"record overhead {result['overhead']:+.1%} (suite geomean)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale")
    parser.add_argument(
        "--write", choices=("optimized",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on overhead ceiling or speedup regression vs committed",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print(
                "check: no committed optimized numbers for this mode",
                file=sys.stderr,
            )
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
        failed = False
        # The 15% ceiling is the absolute bar; the committed measurement
        # plus the regression tolerance absorbs box-to-box noise around
        # it (a committed +14% must not flake at a measured +16%).
        ceiling = max(
            OVERHEAD_CEILING, committed["overhead"] * (1.0 + tolerance)
        )
        status = "ok" if result["overhead"] <= ceiling else "REGRESSION"
        print(
            f"check: record overhead {result['overhead']:+.1%} vs committed "
            f"{committed['overhead']:+.1%} (ceiling {ceiling:.1%}) → {status}"
        )
        if status != "ok":
            failed = True
        floor = committed["headline"] * (1.0 - tolerance)
        if result["mode"] == "full":
            floor = max(floor, SPEEDUP_FLOOR)
        status = "ok" if result["headline"] >= floor else "REGRESSION"
        print(
            f"check: persist speedup {result['headline']:.2f}x vs committed "
            f"{committed['headline']:.2f}x (floor {floor:.2f}x) → {status}"
        )
        if status != "ok":
            failed = True
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
