"""Host-parallelism benchmark: process-parallel epoch execution speedup.

The host layer (``repro.host``) ships self-contained epoch work units to
a pool of worker processes, so independent epochs of a recording execute
and replay concurrently on real host cores. This bench pins the
wall-clock speedup of ``host_jobs=4`` over the serial path for two
multi-epoch workloads (pbzip: syscall+lock pipeline, fft:
compute+barrier kernel), in both phases:

* **record** — ``DoublePlayRecorder.record`` with epoch fan-out. The
  thread-parallel run of each segment is inherently serial (its sync
  hints feed the epoch executors), so record-side speedup is
  Amdahl-limited by the TP fraction;
* **replay** — ``Replayer.replay_parallel``, where every epoch is
  independent from its start checkpoint and scaling approaches the jobs
  count. This phase carries the ≥1.8× headline. (The floor was 2.0×
  before trace-level superinstructions: fusion sped the *serial*
  denominator ~1.5× while dispatch work is fusion-independent, so the
  ratio's Amdahl ceiling dropped even though the absolute jobs=4 wall
  improved — the compounded replay speedup over the pre-fusion serial
  baseline is ~3.3×.)

Because CI hosts may expose fewer than 4 cores (this container reports
``os.cpu_count() == 1``), each phase reports two numbers:

* ``speedup_measured`` — serial wall / jobs=4 wall, honest but
  meaningless when the host cannot run 4 workers concurrently;
* ``speedup_modeled`` — serial wall vs an ideal-4-core makespan built
  from *measured per-unit worker CPU times*: the serial residue
  (``serial wall − Σ unit_cpu``, the coordinator work that parallelism
  cannot touch) plus ``schedule_host_units(unit_cpu, 4)`` (in-order
  greedy list schedule of the measured unit costs onto 4 slots) plus the
  measured dispatch/pickle overhead. No component is estimated — every
  term is a host-clock measurement from the actual parallel run.

The ``headline`` is the geomean of the replay speedups, using measured
numbers when the host has ≥4 CPUs and modeled numbers otherwise (the
JSON records ``host_cpu_count`` so a reader knows which).

Results are written to ``BENCH_host_parallelism.json`` at the repo root.

Usage::

    python benchmarks/bench_host_parallelism.py                # measure + print
    python benchmarks/bench_host_parallelism.py --quick        # small scale
    python benchmarks/bench_host_parallelism.py --write optimized
    python benchmarks/bench_host_parallelism.py --quick --check  # CI gate

``--check`` fails (exit 1) if the measured headline falls more than
``BENCH_TOLERANCE`` (default 20%) below the committed numbers for the
same mode, or below the 2.0× floor the host layer promises.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import run_native  # noqa: E402
from repro.core import DoublePlayConfig, DoublePlayRecorder, Replayer  # noqa: E402
from repro.core.pipeline import schedule_host_units  # noqa: E402
from repro.host.pool import shutdown_shared_pool  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

WORKLOADS = ("pbzip", "fft")
JOBS = 4
EPOCH_DIVISOR = 12  # ~12-14 epochs per recording: enough fan-out for 4 slots
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_parallelism.json"
#: the host layer's promise on a ≥4-core host. 2.0 before superblock
#: fusion sped the serial denominator ~1.5x (see module docstring).
SPEEDUP_FLOOR = 1.8


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _model(serial_wall: float, host: dict, jobs: int) -> float:
    """Ideal-``jobs``-core wall clock from measured per-unit CPU times.

    The dispatch term uses the coordinator's *CPU* measurement
    (``dispatch_cpu``): on the modeled uncontended host the dispatching
    thread runs alone, whereas measured dispatch *wall* on an
    oversubscribed CI container includes preemption by the very workers
    whose concurrency is being modeled.
    """
    unit_cpu = host["unit_cpu"]
    residue = max(serial_wall - sum(unit_cpu), 0.0)
    dispatch = host.get("dispatch_cpu", host["dispatch_wall"])
    return residue + schedule_host_units(unit_cpu, jobs) + dispatch


def measure_workload(name: str, scale: int, repeats: int, workers: int = 2):
    machine = MachineConfig(cores=workers)
    instance = build_workload(name, workers=workers, scale=scale, seed=1)
    native = run_native(instance.image, instance.setup, machine)
    config = DoublePlayConfig(
        machine=machine,
        epoch_cycles=max(native.duration // EPOCH_DIVISOR, 500),
    )
    parallel_config = config.replace(host_jobs=JOBS)

    # --- record phase ---------------------------------------------------
    record_serial = math.inf
    for _ in range(repeats):
        instance = build_workload(name, workers=workers, scale=scale, seed=1)
        start = time.perf_counter()
        serial_result = DoublePlayRecorder(
            instance.image, instance.setup, config
        ).record()
        record_serial = min(record_serial, time.perf_counter() - start)

    # One warm-up fan-out pays pool spawn + worker imports, then measure.
    record_jobs = math.inf
    for _ in range(repeats + 1):
        instance = build_workload(name, workers=workers, scale=scale, seed=1)
        start = time.perf_counter()
        parallel_result = DoublePlayRecorder(
            instance.image, instance.setup, parallel_config
        ).record()
        record_jobs = min(record_jobs, time.perf_counter() - start)
    record_model = _model(record_serial, parallel_result.host, JOBS)

    assert (
        parallel_result.recording.final_digest
        == serial_result.recording.final_digest
    ), f"{name}: parallel record diverged from serial"

    # --- replay phase ---------------------------------------------------
    recording = serial_result.recording
    replayer = Replayer(instance.image, machine)
    replay_serial = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = replayer.replay_parallel(recording)
        replay_serial = min(replay_serial, time.perf_counter() - start)
        assert outcome.verified, f"{name}: serial replay failed"

    replay_jobs = math.inf
    for _ in range(repeats + 1):
        start = time.perf_counter()
        outcome = replayer.replay_parallel(recording, jobs=JOBS)
        replay_jobs = min(replay_jobs, time.perf_counter() - start)
        assert outcome.verified, f"{name}: parallel replay failed"
    replay_model = _model(replay_serial, outcome.host, JOBS)

    return {
        "epochs": recording.epoch_count(),
        "record": {
            "serial_ms": round(record_serial * 1e3, 3),
            "jobs4_wall_ms": round(record_jobs * 1e3, 3),
            "jobs4_modeled_ms": round(record_model * 1e3, 3),
            "epoch_cpu_ms": round(sum(parallel_result.host["unit_cpu"]) * 1e3, 3),
            "dispatch_ms": round(parallel_result.host["dispatch_wall"] * 1e3, 3),
            "speedup_measured": round(record_serial / record_jobs, 3),
            "speedup_modeled": round(record_serial / record_model, 3),
        },
        "replay": {
            "serial_ms": round(replay_serial * 1e3, 3),
            "jobs4_wall_ms": round(replay_jobs * 1e3, 3),
            "jobs4_modeled_ms": round(replay_model * 1e3, 3),
            "epoch_cpu_ms": round(sum(outcome.host["unit_cpu"]) * 1e3, 3),
            "dispatch_ms": round(outcome.host["dispatch_wall"] * 1e3, 3),
            "speedup_measured": round(replay_serial / replay_jobs, 3),
            "speedup_modeled": round(replay_serial / replay_model, 3),
        },
    }


def run_suite(quick: bool, repeats: int):
    cpus = os.cpu_count() or 1
    basis = "measured" if cpus >= JOBS else "modeled"
    scale = 8 if quick else 16
    per_workload = {}
    for name in WORKLOADS:
        per_workload[name] = measure_workload(name, scale=scale, repeats=repeats)
    shutdown_shared_pool()
    headline = _geomean(
        [row["replay"]["speedup_" + basis] for row in per_workload.values()]
    )
    record_headline = _geomean(
        [row["record"]["speedup_" + basis] for row in per_workload.values()]
    )
    return {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "jobs": JOBS,
        "repeats": repeats,
        "host_cpu_count": cpus,
        "speedup_basis": basis,
        "per_workload": per_workload,
        "record_speedup_geomean": round(record_headline, 3),
        "replay_speedup_geomean": round(headline, 3),
        "headline": round(headline, 3),
    }


def _load_results():
    if RESULT_PATH.exists():
        return json.loads(RESULT_PATH.read_text())
    return {}


def _print_suite(result):
    print(
        f"host parallelism ({result['mode']}, scale={result['scale']}, "
        f"jobs={result['jobs']}, host cpus={result['host_cpu_count']}, "
        f"basis={result['speedup_basis']}):"
    )
    for name, row in result["per_workload"].items():
        rec, rep = row["record"], row["replay"]
        print(
            f"  {name:<8} {row['epochs']:>2} epochs"
            f"  record {rec['serial_ms']:.1f}ms → modeled {rec['jobs4_modeled_ms']:.1f}ms"
            f" ({rec['speedup_modeled']:.2f}x)"
            f"  replay {rep['serial_ms']:.1f}ms → modeled {rep['jobs4_modeled_ms']:.1f}ms"
            f" ({rep['speedup_modeled']:.2f}x)"
        )
    print(
        f"  HEADLINE replay {result['headline']:.2f}x"
        f"  (record {result['record_speedup_geomean']:.2f}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale, 1 repeat")
    parser.add_argument(
        "--write", choices=("optimized",), help="store results under this key"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the headline regresses vs committed numbers or the 2x floor",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    result = run_suite(quick=args.quick, repeats=repeats)
    _print_suite(result)

    results = _load_results()
    if args.write:
        results.setdefault(args.write, {})[result["mode"]] = result
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.write}/{result['mode']} to {RESULT_PATH.name}")

    if args.check:
        committed = results.get("optimized", {}).get(result["mode"])
        if not committed:
            print("check: no committed optimized numbers for this mode", file=sys.stderr)
            return 1
        tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
        floor = max(committed["headline"] * (1.0 - tolerance), SPEEDUP_FLOOR)
        status = "ok" if result["headline"] >= floor else "REGRESSION"
        print(
            f"check: headline {result['headline']:.2f}x vs committed "
            f"{committed['headline']:.2f}x (floor {floor:.2f}x) → {status}"
        )
        if status != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
