"""Fig 7 — overhead without spare cores.

When the epoch-parallel execution must share the application's own cores,
uniparallelism costs roughly a second execution: overhead near (or above)
2x, versus the modest spare-core numbers of Figs 5/6.

Run: pytest benchmarks/bench_fig7_no_spare_cores.py --benchmark-only -s
"""

from repro.analysis import experiments
from repro.analysis.tables import render_table

COLUMNS = ["workload", "native", "makespan", "overhead", "epochs"]
NAMES = ["pbzip", "pfscan", "apache", "fft", "ocean", "radix"]


def test_fig7_no_spare_cores(benchmark):
    def run():
        return (
            experiments.overhead_experiment(
                workers=2, spare_cores=False, names=NAMES
            ),
            experiments.overhead_experiment(
                workers=2, spare_cores=True, names=NAMES
            ),
        )

    shared, spare = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(shared, COLUMNS, title="Fig 7: overhead with NO spare cores, W=2 (paper: ~2x)"))
    shared_geo = shared[-1]["overhead_raw"]
    spare_geo = spare[-1]["overhead_raw"]
    # without spare cores the second execution is paid for in full
    assert shared_geo > 0.6, f"{shared_geo:.1%} suspiciously low"
    assert shared_geo > 2.5 * spare_geo
