"""Legacy setup shim.

The target environment has no `wheel` package and no network, so PEP-517
editable installs (which need bdist_wheel) fail. `pip install -e . --no-use-pep517`
— or plain `pip install -e .` on environments with wheel — both work.
"""
from setuptools import setup

setup()
